//! Model-comparison machinery for the Figure-6/7 accuracy experiments.
//!
//! Every approach predicts each test row's **normalized mean response
//! time** (response / expected service) from the same observable features;
//! accuracy is absolute percent error against the measured value, exactly
//! the metric of Figure 6.

use crate::dataset::Dataset;
use stca_baselines::{Ridge, TabularKind, TabularModel};
use stca_core::{ModelConfig, Predictor};
use stca_deepforest::metrics::{ape_summary, ApeSummary};
use stca_neuralnet::net::{ConvNet, NetConfig, NnSample};
use stca_neuralnet::tune::{random_search, SearchSpace};
use stca_profiler::profile::Target;
use stca_queuesim::{QueueSim, StationConfig};
use stca_util::{Matrix, SeedStream};
use stca_workloads::WorkloadSpec;

/// The Figure-6 lineup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// Linear regression on flattened profile features.
    LinearRegression,
    /// A single decision tree.
    DecisionTree,
    /// The tuned CNN mapping features directly to response time.
    Cnn,
    /// First-principles queueing simulation only (no learning: EA assumed
    /// ideal, base service assumed nominal).
    QueueModel,
    /// Queueing simulation + cascade concepts but no multi-grain scanning.
    QueueWithConcepts,
    /// The full approach: MGS + cascade EA model + queueing.
    Ours,
}

impl Approach {
    /// All approaches in Figure-6 order (simple to complex).
    pub const ALL: [Approach; 6] = [
        Approach::LinearRegression,
        Approach::DecisionTree,
        Approach::Cnn,
        Approach::QueueModel,
        Approach::QueueWithConcepts,
        Approach::Ours,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Approach::LinearRegression => "linear regression",
            Approach::DecisionTree => "decision tree",
            Approach::Cnn => "CNN (direct)",
            Approach::QueueModel => "queue model",
            Approach::QueueWithConcepts => "queue + concepts",
            Approach::Ours => "ours (MGS+cascade+queue)",
        }
    }

    /// Train fraction the paper gives each approach (ours is handicapped
    /// to 33%, competitors get 70%).
    pub fn train_fraction(&self) -> f64 {
        match self {
            Approach::Ours | Approach::QueueWithConcepts => 0.33,
            _ => 0.70,
        }
    }
}

fn design(ds: &Dataset) -> (Matrix, Vec<f64>) {
    ds.profile_set().design_matrix(Target::MeanResponse)
}

/// Feature standardization fitted on training data (gradient training
/// diverges on raw log-counter magnitudes; trees don't care, but the CNN
/// needs z-scored inputs, as any PyTorch pipeline would use).
struct NnScaler {
    scalar_mean: Vec<f64>,
    scalar_std: Vec<f64>,
    /// Per counter-row mean/std pooled over trace columns.
    trace_mean: Vec<f64>,
    trace_std: Vec<f64>,
}

impl NnScaler {
    fn fit(ds: &Dataset) -> NnScaler {
        let first = &ds.rows[0].row;
        let sdim = first.scalar_features().len();
        let trows = first.trace.rows();
        let mut s_stats = vec![stca_util::OnlineStats::new(); sdim];
        let mut t_stats = vec![stca_util::OnlineStats::new(); trows];
        for r in &ds.rows {
            for (st, v) in s_stats.iter_mut().zip(r.row.scalar_features()) {
                st.push(v);
            }
            for (row, st) in t_stats.iter_mut().enumerate() {
                for &v in r.row.trace.row(row) {
                    st.push(v);
                }
            }
        }
        NnScaler {
            scalar_mean: s_stats.iter().map(|s| s.mean()).collect(),
            scalar_std: s_stats.iter().map(|s| s.std_dev().max(1e-9)).collect(),
            trace_mean: t_stats.iter().map(|s| s.mean()).collect(),
            trace_std: t_stats.iter().map(|s| s.std_dev().max(1e-9)).collect(),
        }
    }

    fn apply(&self, ds: &Dataset) -> Vec<NnSample> {
        ds.rows
            .iter()
            .map(|r| {
                let scalars: Vec<f64> = r
                    .row
                    .scalar_features()
                    .iter()
                    .zip(&self.scalar_mean)
                    .zip(&self.scalar_std)
                    .map(|((&v, &m), &s)| (v - m) / s)
                    .collect();
                let mut trace = r.row.trace.clone();
                for row in 0..trace.rows() {
                    let (m, s) = (self.trace_mean[row], self.trace_std[row]);
                    for v in trace.row_mut(row) {
                        *v = (*v - m) / s;
                    }
                }
                NnSample { scalars, trace }
            })
            .collect()
    }
}

fn nn_targets(ds: &Dataset) -> Vec<f64> {
    ds.rows.iter().map(|r| r.row.mean_response_norm).collect()
}

/// Queue-model-only prediction: nominal service, ideal EA.
fn queue_only_prediction(row: &crate::dataset::LabeledRow, sim_queries: usize, seed: u64) -> f64 {
    let spec = WorkloadSpec::for_benchmark(row.benchmark);
    let utilization = row.row.static_features[0];
    let timeout_ratio = row.row.static_features[1];
    let servers = 2;
    let station = StationConfig {
        inter_arrival: stca_util::Distribution::Exponential {
            mean: spec.mean_service_time / (utilization * servers as f64),
        },
        service: spec.demand.scaled(spec.mean_service_time),
        expected_service: spec.mean_service_time,
        timeout_ratio,
        boost_rate: row.row.allocation_ratio, // EA = 1 assumed
        servers,
        shared_boost: true,
        measured_queries: sim_queries,
        warmup_queries: sim_queries / 10,
    };
    QueueSim::new(station, seed).run().mean_response() / spec.mean_service_time
}

/// Evaluate one approach: train on `train`, predict `test`, score APE on
/// normalized mean response time.
pub fn evaluate_approach(
    approach: Approach,
    train: &Dataset,
    test: &Dataset,
    sim_queries: usize,
    seed: u64,
) -> ApeSummary {
    assert!(!test.is_empty());
    let observed: Vec<f64> = test.rows.iter().map(|r| r.row.mean_response_norm).collect();
    let predicted: Vec<f64> = match approach {
        Approach::LinearRegression => {
            let (x, y) = design(train);
            let model = Ridge::fit(&x, &y, 1.0);
            test.rows
                .iter()
                .map(|r| model.predict(&r.row.flat_features()))
                .collect()
        }
        Approach::DecisionTree => {
            let (x, y) = design(train);
            let model = TabularModel::fit(TabularKind::DecisionTree, &x, &y, seed);
            test.rows
                .iter()
                .map(|r| model.predict(&r.row.flat_features()))
                .collect()
        }
        Approach::Cnn => {
            let scaler = NnScaler::fit(train);
            let s = scaler.apply(train);
            let y = nn_targets(train);
            // hold out a validation slice for the hyperparameter search
            let n_val = (s.len() / 4).max(1);
            let (val_s, tr_s) = s.split_at(n_val);
            let (val_y, tr_y) = y.split_at(n_val);
            let space = SearchSpace {
                epochs: (20, 60),
                ..Default::default()
            };
            let trials = random_search(
                (tr_s, tr_y),
                (val_s, val_y),
                &space,
                4,
                &SeedStream::new(seed),
            );
            let best = trials.first().expect("at least one trial");
            let net = ConvNet::fit(
                &s,
                &y,
                NetConfig {
                    seed,
                    ..best.config
                },
            );
            net.predict_all(&scaler.apply(test))
        }
        Approach::QueueModel => stca_exec::par_map_indexed(&test.rows, |i, r| {
            queue_only_prediction(r, sim_queries, seed ^ i as u64)
        }),
        Approach::QueueWithConcepts | Approach::Ours => {
            // use the stronger configuration once there is enough data to
            // feed it; tiny smoke runs keep the quick config
            let mut config = if train.len() >= 30 {
                ModelConfig::standard(seed)
            } else {
                ModelConfig::quick(seed)
            };
            config.sim_queries = sim_queries;
            if approach == Approach::QueueWithConcepts {
                config.ea_forest.mgs = None;
            }
            let predictor = Predictor::train(&train.profile_set(), &config);
            test.rows
                .iter()
                .map(|r| {
                    let spec = WorkloadSpec::for_benchmark(r.benchmark);
                    predictor
                        .predict_response(&r.row, r.benchmark)
                        .mean_response
                        / spec.mean_service_time
                })
                .collect()
        }
    };
    ape_summary(&predicted, &observed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{build_pair_dataset, Scale};
    use stca_profiler::sampler::CounterOrdering;
    use stca_util::Rng64;
    use stca_workloads::BenchmarkId;

    #[test]
    fn all_approaches_produce_finite_errors() {
        let d = build_pair_dataset(
            (BenchmarkId::Knn, BenchmarkId::Bfs),
            5,
            Scale::Quick,
            CounterOrdering::Grouped,
            3,
        );
        let mut rng = Rng64::new(4);
        let (train, test) = d.split(0.6, &mut rng);
        for a in [
            Approach::LinearRegression,
            Approach::DecisionTree,
            Approach::QueueModel,
        ] {
            let s = evaluate_approach(a, &train, &test, 200, 5);
            assert!(s.median.is_finite(), "{}: {:?}", a.name(), s);
            assert!(s.median >= 0.0);
        }
    }
}
