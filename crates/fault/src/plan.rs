//! The fault plan: a seeded, declarative description of what goes wrong.
//!
//! A [`FaultPlan`] holds per-fault probabilities plus its own seed; a
//! [`FaultInjector`] is the plan specialised to one experiment attempt
//! (`plan.injector(run_key, attempt)`). Every decision the injector makes
//! is a pure function of `(plan seed, run key, attempt, sample tag)` via
//! tagged [`SeedStream`]s — no shared mutable RNG — so the same plan
//! produces bit-identical faults whether the run executes on 1 worker or 8,
//! and each retry attempt re-rolls independently.

use crate::error::StcaError;
use crate::sanitize::COUNTER_PLAUSIBLE_MAX;
use stca_util::{Rng64, SeedStream, SpecError, SpecErrorKind, SpecLocation};
use std::sync::{Arc, OnceLock};

// Tag space for the per-attempt stream; unique within one injector.
const TAG_CRASH: u64 = 0x11;
const TAG_TIMEOUT: u64 = 0x22;
const TAG_LATENCY: u64 = 0x33;
const TAG_SAMPLE: u64 = 0x44;
const TAG_NOISE: u64 = 0x55;
const TAG_CORRUPT: u64 = 0x66;
const TAG_PREDICT: u64 = 0x77;
const TAG_STALL: u64 = 0x88;

// Tag space for shard-scoped fleet faults. These are rolled on the *plan*
// (not a per-attempt injector) keyed `(plan seed, shard id, epoch)`, so a
// faulted fleet is bit-identical at any `--threads` and independent of
// request interleaving.
const TAG_SHARD_CRASH: u64 = 0x99;
const TAG_SHARD_STALL: u64 = 0xAA;
const TAG_SHARD_FLAP: u64 = 0xBB;

// Tag space for model-lifecycle faults (crates/serve adapt loop). Rolled
// per `(plan seed, shard id, epoch)` exactly like the shard faults above,
// so every lifecycle failure mode replays bit-identically at any
// `--threads`.
const TAG_DRIFT_BURST: u64 = 0xCC;
const TAG_RETRAIN_FAIL: u64 = 0xDD;
const TAG_RETRAIN_SLOW: u64 = 0xEE;
const TAG_PROMOTE_CORRUPT: u64 = 0xFF;

/// Injection-side metric handles, resolved once.
struct InjectMetrics {
    crashes: Arc<stca_obs::Counter>,
    timeouts: Arc<stca_obs::Counter>,
    drops: Arc<stca_obs::Counter>,
    corruptions: Arc<stca_obs::Counter>,
    stucks: Arc<stca_obs::Counter>,
    predict_failures: Arc<stca_obs::Counter>,
    stalls: Arc<stca_obs::Counter>,
    latency_s: Arc<stca_obs::Histogram>,
    shard_crashes: Arc<stca_obs::Counter>,
    shard_stalls: Arc<stca_obs::Counter>,
    shard_flaps: Arc<stca_obs::Counter>,
    drift_bursts: Arc<stca_obs::Counter>,
    retrain_failures: Arc<stca_obs::Counter>,
    retrain_slows: Arc<stca_obs::Counter>,
    promote_corruptions: Arc<stca_obs::Counter>,
}

fn inject_metrics() -> &'static InjectMetrics {
    static METRICS: OnceLock<InjectMetrics> = OnceLock::new();
    METRICS.get_or_init(|| InjectMetrics {
        crashes: stca_obs::counter("fault.injected_crashes_total"),
        timeouts: stca_obs::counter("fault.injected_timeouts_total"),
        drops: stca_obs::counter("fault.injected_sample_drops_total"),
        corruptions: stca_obs::counter("fault.injected_sample_corruptions_total"),
        stucks: stca_obs::counter("fault.injected_sample_stucks_total"),
        predict_failures: stca_obs::counter("fault.injected_predict_failures_total"),
        stalls: stca_obs::counter("fault.injected_stalls_total"),
        latency_s: stca_obs::histogram("fault.injected_latency_seconds"),
        shard_crashes: stca_obs::counter("fault.injected_shard_crashes_total"),
        shard_stalls: stca_obs::counter("fault.injected_shard_stalls_total"),
        shard_flaps: stca_obs::counter("fault.injected_shard_flaps_total"),
        drift_bursts: stca_obs::counter("fault.injected_drift_bursts_total"),
        retrain_failures: stca_obs::counter("fault.injected_retrain_failures_total"),
        retrain_slows: stca_obs::counter("fault.injected_retrain_slows_total"),
        promote_corruptions: stca_obs::counter("fault.injected_promote_corruptions_total"),
    })
}

/// What the plan does to one counter sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleFault {
    /// Sample is delivered intact (measurement noise may still apply).
    None,
    /// Sample was dropped by the collector: the row is lost.
    Drop,
    /// Collector returned garbage: counters become implausible values.
    Corrupt,
    /// Sensor is stuck: the previous row is reported again.
    Stuck,
}

/// A deterministic description of fault rates for a pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Root seed for every injection decision.
    pub seed: u64,
    /// Probability an experiment attempt crashes outright.
    pub crash_prob: f64,
    /// Probability an experiment attempt times out.
    pub timeout_prob: f64,
    /// Per-sample probability the collector drops the row.
    pub dropout_prob: f64,
    /// Per-sample probability the collector returns garbage counters.
    pub corrupt_prob: f64,
    /// Per-sample probability the sensor repeats the previous row.
    pub stuck_prob: f64,
    /// Relative std-dev of multiplicative measurement noise (0 = clean).
    pub noise_rel: f64,
    /// Mean injected collection latency per attempt, virtual seconds.
    pub latency_mean_s: f64,
    /// Per-call probability the primary (deep-forest) predictor fails.
    pub predict_fail_prob: f64,
    /// Per-stage probability a pipeline stage stalls past its watchdog
    /// budget (the serving loop fails it into the retry path).
    pub stall_prob: f64,
    /// Per-(shard, epoch) probability a fleet shard crashes for the whole
    /// epoch: its queue is flushed to the router and it is unroutable
    /// until the next healthy epoch.
    pub shard_crash_prob: f64,
    /// Per-(shard, epoch) probability a fleet shard stalls: its servers
    /// are pushed forward in virtual time, so queues grow and deadlines
    /// shed, but it keeps accepting and draining work.
    pub shard_stall_prob: f64,
    /// Per-(shard, epoch) probability a fleet shard flaps: the router
    /// treats it as unhealthy for the epoch, but in-flight and queued
    /// work keeps draining on the shard.
    pub shard_flap_prob: f64,
    /// Per-(shard, epoch) probability the serving traffic's observed EA
    /// drifts for the epoch: the adapt loop sees residuals offset by a
    /// seeded burst magnitude, which is what trips the drift detector.
    pub drift_burst_prob: f64,
    /// Per-(shard, epoch) probability a triggered warm-start retrain
    /// errors out: the lifecycle abandons the candidate and re-arms.
    pub retrain_fail_prob: f64,
    /// Per-(shard, epoch) probability a triggered retrain overruns its
    /// virtual-time budget: the lifecycle treats it like a failure, so a
    /// slow trainer can never wedge a shard.
    pub retrain_slow_prob: f64,
    /// Per-(shard, epoch) probability a promoted candidate is corrupt
    /// (its predictions are offset after promotion): the guard band must
    /// catch it and roll back to the previous version.
    pub promote_corrupt_prob: f64,
}

impl FaultPlan {
    /// The no-fault plan: every probability zero. Checked code paths run
    /// byte-identically to the unchecked ones under this plan.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            crash_prob: 0.0,
            timeout_prob: 0.0,
            dropout_prob: 0.0,
            corrupt_prob: 0.0,
            stuck_prob: 0.0,
            noise_rel: 0.0,
            latency_mean_s: 0.0,
            predict_fail_prob: 0.0,
            stall_prob: 0.0,
            shard_crash_prob: 0.0,
            shard_stall_prob: 0.0,
            shard_flap_prob: 0.0,
            drift_burst_prob: 0.0,
            retrain_fail_prob: 0.0,
            retrain_slow_prob: 0.0,
            promote_corrupt_prob: 0.0,
        }
    }

    /// Mild preset used by the CI fault job: a few percent of everything.
    pub fn ci_default() -> Self {
        FaultPlan {
            seed: 0xC1DE,
            crash_prob: 0.05,
            timeout_prob: 0.02,
            dropout_prob: 0.05,
            corrupt_prob: 0.02,
            stuck_prob: 0.02,
            noise_rel: 0.01,
            latency_mean_s: 0.05,
            predict_fail_prob: 0.02,
            stall_prob: 0.01,
            shard_crash_prob: 0.05,
            shard_stall_prob: 0.05,
            shard_flap_prob: 0.05,
            drift_burst_prob: 0.05,
            retrain_fail_prob: 0.05,
            retrain_slow_prob: 0.05,
            promote_corrupt_prob: 0.05,
        }
    }

    /// Hostile preset: ≥10% run crashes, ≥5% sample dropout.
    pub fn heavy() -> Self {
        FaultPlan {
            seed: 0xFA11,
            crash_prob: 0.15,
            timeout_prob: 0.05,
            dropout_prob: 0.10,
            corrupt_prob: 0.05,
            stuck_prob: 0.05,
            noise_rel: 0.05,
            latency_mean_s: 0.2,
            predict_fail_prob: 0.2,
            stall_prob: 0.05,
            shard_crash_prob: 0.10,
            shard_stall_prob: 0.10,
            shard_flap_prob: 0.10,
            drift_burst_prob: 0.20,
            retrain_fail_prob: 0.10,
            retrain_slow_prob: 0.10,
            promote_corrupt_prob: 0.15,
        }
    }

    /// Whether any fault has non-zero probability.
    pub fn is_active(&self) -> bool {
        self.crash_prob > 0.0
            || self.timeout_prob > 0.0
            || self.dropout_prob > 0.0
            || self.corrupt_prob > 0.0
            || self.stuck_prob > 0.0
            || self.noise_rel > 0.0
            || self.latency_mean_s > 0.0
            || self.predict_fail_prob > 0.0
            || self.stall_prob > 0.0
            || self.shard_crash_prob > 0.0
            || self.shard_stall_prob > 0.0
            || self.shard_flap_prob > 0.0
            || self.drift_burst_prob > 0.0
            || self.retrain_fail_prob > 0.0
            || self.retrain_slow_prob > 0.0
            || self.promote_corrupt_prob > 0.0
    }

    /// The preset names `parse` accepts.
    pub const PRESETS: [&'static str; 3] = ["none", "ci-default", "heavy"];

    /// The `key=value` keys `parse` accepts, in documentation order.
    pub const KEYS: [&'static str; 17] = [
        "seed",
        "crash",
        "timeout",
        "dropout",
        "corrupt",
        "stuck",
        "noise",
        "latency",
        "predict_fail",
        "stall",
        "shard_crash",
        "shard_stall",
        "shard_flap",
        "drift_burst",
        "retrain_fail",
        "retrain_slow",
        "promote_corrupt",
    ];

    /// Parse a plan spec: a preset name (`none`, `ci-default`, `heavy`),
    /// `key=value` pairs, or a preset followed by overrides — all
    /// comma-separated. Keys: `seed`, `crash`, `timeout`, `dropout`,
    /// `corrupt`, `stuck`, `noise`, `latency`, `predict_fail`, `stall`,
    /// `shard_crash`, `shard_stall`, `shard_flap`, `drift_burst`,
    /// `retrain_fail`, `retrain_slow`, `promote_corrupt`.
    ///
    /// Failures name the offending key/value and list the valid keys; they
    /// surface as usage errors (exit 2).
    ///
    /// ```
    /// use stca_fault::FaultPlan;
    /// let plan = FaultPlan::parse("heavy,crash=0.3,seed=7").unwrap();
    /// assert_eq!(plan.crash_prob, 0.3);
    /// assert_eq!(plan.seed, 7);
    /// ```
    pub fn parse(spec: &str) -> Result<Self, StcaError> {
        Self::parse_spec(spec, "fault plan").map_err(StcaError::from)
    }

    /// [`FaultPlan::parse`] with a caller-supplied error context and the
    /// typed [`SpecError`] surface — the scenario parser embeds fault-plan
    /// fragments and reuses this to report them under its own file/line
    /// context.
    pub fn parse_spec(spec: &str, context: &str) -> Result<Self, SpecError> {
        let mut plan = FaultPlan::none();
        for (i, token) in spec.split(',').map(str::trim).enumerate() {
            if token.is_empty() {
                continue;
            }
            match token {
                "none" => plan = FaultPlan::none(),
                "ci-default" => plan = FaultPlan::ci_default(),
                "heavy" => plan = FaultPlan::heavy(),
                _ => {
                    let at = SpecLocation::Token(i);
                    let (key, value) = token.split_once('=').ok_or_else(|| {
                        SpecError::new(
                            context,
                            SpecErrorKind::Malformed {
                                token: token.to_string(),
                                expected: format!(
                                    "a preset ({}) or key=value (keys: {})",
                                    Self::PRESETS.join(", "),
                                    Self::KEYS.join(", ")
                                ),
                            },
                        )
                        .at(at)
                    })?;
                    plan.set(key, value)
                        .map_err(|e| SpecError::new(context, e).at(at))?;
                }
            }
        }
        Ok(plan)
    }

    /// Set one `key=value` override on the plan, validating range. The
    /// error carries no context — callers wrap it in a [`SpecError`] with
    /// their own location.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), SpecErrorKind> {
        if key == "seed" {
            self.seed = value.parse().map_err(|_| SpecErrorKind::BadValue {
                key: key.to_string(),
                value: value.to_string(),
                want: "a u64".to_string(),
            })?;
            return Ok(());
        }
        let num: f64 = value.parse().map_err(|_| SpecErrorKind::BadValue {
            key: key.to_string(),
            value: value.to_string(),
            want: "a number".to_string(),
        })?;
        let field = match key {
            "crash" => &mut self.crash_prob,
            "timeout" => &mut self.timeout_prob,
            "dropout" => &mut self.dropout_prob,
            "corrupt" => &mut self.corrupt_prob,
            "stuck" => &mut self.stuck_prob,
            "noise" => &mut self.noise_rel,
            "latency" => &mut self.latency_mean_s,
            "predict_fail" => &mut self.predict_fail_prob,
            "stall" => &mut self.stall_prob,
            "shard_crash" => &mut self.shard_crash_prob,
            "shard_stall" => &mut self.shard_stall_prob,
            "shard_flap" => &mut self.shard_flap_prob,
            "drift_burst" => &mut self.drift_burst_prob,
            "retrain_fail" => &mut self.retrain_fail_prob,
            "retrain_slow" => &mut self.retrain_slow_prob,
            "promote_corrupt" => &mut self.promote_corrupt_prob,
            _ => {
                return Err(SpecErrorKind::UnknownKey {
                    key: key.to_string(),
                    valid: &Self::KEYS,
                })
            }
        };
        let is_prob = !matches!(key, "noise" | "latency");
        if !num.is_finite() || num < 0.0 || (is_prob && num > 1.0) {
            return Err(SpecErrorKind::OutOfRange {
                key: key.to_string(),
                value: value.to_string(),
                range: if is_prob {
                    "a probability in [0, 1]".to_string()
                } else {
                    "a finite value >= 0".to_string()
                },
            });
        }
        *field = num;
        Ok(())
    }

    /// Plan from the `STCA_FAULT_PLAN` environment variable; unset or empty
    /// means [`FaultPlan::none`].
    pub fn from_env() -> Result<Self, StcaError> {
        match std::env::var("STCA_FAULT_PLAN") {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec),
            _ => Ok(FaultPlan::none()),
        }
    }

    /// Specialise the plan to one experiment attempt. `run_key` should
    /// identify the experiment (its spec seed); `attempt` is the 0-based
    /// retry attempt, so each retry re-rolls every fault independently.
    pub fn injector(&self, run_key: u64, attempt: u32) -> FaultInjector {
        FaultInjector {
            plan: self.clone(),
            run_key,
            attempt,
            stream: SeedStream::new(self.seed)
                .derive(run_key)
                .derive(attempt as u64),
        }
    }

    /// Whether fleet shard `shard_id` crashes for virtual-time epoch
    /// `epoch`. Pure in `(plan seed, shard id, epoch)` — independent of the
    /// run key, retry attempt, and request interleaving — so sharded fleets
    /// fault bit-identically at any `--threads`. A `true` roll is counted
    /// in `fault.injected_shard_crashes_total`.
    pub fn shard_crash(&self, shard_id: u32, epoch: u64) -> bool {
        if self.shard_crash_prob <= 0.0 {
            return false;
        }
        let hit = self
            .shard_rng(TAG_SHARD_CRASH, shard_id, epoch)
            .next_bool(self.shard_crash_prob);
        if hit {
            inject_metrics().shard_crashes.inc();
        }
        hit
    }

    /// Whether fleet shard `shard_id` flaps for epoch `epoch`: the router
    /// must treat it as unhealthy, but queued work keeps draining. Same
    /// keying discipline as [`FaultPlan::shard_crash`].
    pub fn shard_flap(&self, shard_id: u32, epoch: u64) -> bool {
        if self.shard_flap_prob <= 0.0 {
            return false;
        }
        let hit = self
            .shard_rng(TAG_SHARD_FLAP, shard_id, epoch)
            .next_bool(self.shard_flap_prob);
        if hit {
            inject_metrics().shard_flaps.inc();
        }
        hit
    }

    /// Virtual seconds of injected stall for shard `shard_id` in epoch
    /// `epoch`, or `0.0` when the shard proceeds normally. A stalled shard
    /// loses 25–75% of the epoch (`epoch_s`) of server time, so its queue
    /// grows and deadline sheds follow. Same keying discipline as
    /// [`FaultPlan::shard_crash`].
    pub fn shard_stall_s(&self, shard_id: u32, epoch: u64, epoch_s: f64) -> f64 {
        if self.shard_stall_prob <= 0.0 {
            return 0.0;
        }
        let mut rng = self.shard_rng(TAG_SHARD_STALL, shard_id, epoch);
        if !rng.next_bool(self.shard_stall_prob) {
            return 0.0;
        }
        inject_metrics().shard_stalls.inc();
        epoch_s.max(0.0) * (0.25 + 0.5 * rng.next_f64())
    }

    /// Observed-EA drift offset for shard `shard_id` in epoch `epoch`, or
    /// `0.0` when the traffic is clean. A burst shifts every observed EA
    /// in the epoch by 0.6–1.5, which is what pushes residuals over the
    /// adapt loop's drift threshold. Same `(plan seed, shard id, epoch)`
    /// keying discipline as [`FaultPlan::shard_crash`]; the adapt loop
    /// rolls it once per epoch, never per request.
    pub fn drift_burst_offset(&self, shard_id: u32, epoch: u64) -> f64 {
        if self.drift_burst_prob <= 0.0 {
            return 0.0;
        }
        let mut rng = self.shard_rng(TAG_DRIFT_BURST, shard_id, epoch);
        if !rng.next_bool(self.drift_burst_prob) {
            return 0.0;
        }
        inject_metrics().drift_bursts.inc();
        0.6 + 0.9 * rng.next_f64()
    }

    /// Whether a retrain triggered on shard `shard_id` in epoch `epoch`
    /// errors out. Counted in `fault.injected_retrain_failures_total`.
    pub fn retrain_fail(&self, shard_id: u32, epoch: u64) -> bool {
        if self.retrain_fail_prob <= 0.0 {
            return false;
        }
        let hit = self
            .shard_rng(TAG_RETRAIN_FAIL, shard_id, epoch)
            .next_bool(self.retrain_fail_prob);
        if hit {
            inject_metrics().retrain_failures.inc();
        }
        hit
    }

    /// Virtual seconds a retrain triggered on shard `shard_id` in epoch
    /// `epoch` overruns its budget `budget_s`, or `0.0` when it finishes
    /// in time. A slow retrain overshoots by 1.5–4x the budget, so the
    /// lifecycle reliably classifies it as over budget and abandons the
    /// candidate.
    pub fn retrain_slow_s(&self, shard_id: u32, epoch: u64, budget_s: f64) -> f64 {
        if self.retrain_slow_prob <= 0.0 {
            return 0.0;
        }
        let mut rng = self.shard_rng(TAG_RETRAIN_SLOW, shard_id, epoch);
        if !rng.next_bool(self.retrain_slow_prob) {
            return 0.0;
        }
        inject_metrics().retrain_slows.inc();
        budget_s.max(0.1) * (1.5 + 2.5 * rng.next_f64())
    }

    /// Whether a candidate promoted on shard `shard_id` in epoch `epoch`
    /// is corrupt: its post-promotion predictions are offset, so the guard
    /// band must regress and roll back. Counted in
    /// `fault.injected_promote_corruptions_total`.
    pub fn promote_corrupt(&self, shard_id: u32, epoch: u64) -> bool {
        if self.promote_corrupt_prob <= 0.0 {
            return false;
        }
        let hit = self
            .shard_rng(TAG_PROMOTE_CORRUPT, shard_id, epoch)
            .next_bool(self.promote_corrupt_prob);
        if hit {
            inject_metrics().promote_corruptions.inc();
        }
        hit
    }

    fn shard_rng(&self, tag: u64, shard_id: u32, epoch: u64) -> Rng64 {
        SeedStream::new(self.seed)
            .derive(tag)
            .derive(shard_id as u64)
            .rng(epoch)
    }
}

/// A [`FaultPlan`] bound to one `(run, attempt)` pair.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    run_key: u64,
    attempt: u32,
    stream: SeedStream,
}

impl FaultInjector {
    /// The plan this injector was built from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether this injector can alter anything at all.
    pub fn is_active(&self) -> bool {
        self.plan.is_active()
    }

    /// Roll run-level faults: does this attempt crash or time out?
    pub fn attempt_outcome(&self) -> Result<(), StcaError> {
        if self.plan.crash_prob > 0.0 && self.stream.rng(TAG_CRASH).next_bool(self.plan.crash_prob)
        {
            inject_metrics().crashes.inc();
            return Err(StcaError::InjectedCrash {
                run_key: self.run_key,
                attempt: self.attempt,
            });
        }
        if self.plan.timeout_prob > 0.0 {
            let mut rng = self.stream.rng(TAG_TIMEOUT);
            if rng.next_bool(self.plan.timeout_prob) {
                inject_metrics().timeouts.inc();
                let budget = self.plan.latency_mean_s.max(0.1) * 100.0;
                return Err(StcaError::InjectedTimeout {
                    run_key: self.run_key,
                    attempt: self.attempt,
                    waited_s: budget * (0.5 + rng.next_f64()),
                });
            }
        }
        Ok(())
    }

    /// Virtual seconds of injected collection latency for this attempt
    /// (0 when the plan has none). Recorded to
    /// `fault.injected_latency_seconds`.
    pub fn injected_latency_s(&self) -> f64 {
        if self.plan.latency_mean_s <= 0.0 {
            return 0.0;
        }
        let s = self
            .stream
            .rng(TAG_LATENCY)
            .next_exp(1.0 / self.plan.latency_mean_s);
        inject_metrics().latency_s.record(s);
        s
    }

    /// Roll the fault affecting one sample. `tag` must uniquely identify
    /// the sample within the attempt (callers compose station and sample
    /// indices). A single uniform draw is split across the three fault
    /// kinds so their probabilities stay independent of roll order.
    pub fn sample_fault(&self, tag: u64) -> SampleFault {
        let p = &self.plan;
        if p.dropout_prob <= 0.0 && p.corrupt_prob <= 0.0 && p.stuck_prob <= 0.0 {
            return SampleFault::None;
        }
        let u = self.sample_rng(TAG_SAMPLE, tag).next_f64();
        if u < p.dropout_prob {
            inject_metrics().drops.inc();
            SampleFault::Drop
        } else if u < p.dropout_prob + p.corrupt_prob {
            inject_metrics().corruptions.inc();
            SampleFault::Corrupt
        } else if u < p.dropout_prob + p.corrupt_prob + p.stuck_prob {
            inject_metrics().stucks.inc();
            SampleFault::Stuck
        } else {
            SampleFault::None
        }
    }

    /// Garbage counter values for a corrupted sample: `n` values, each far
    /// above [`COUNTER_PLAUSIBLE_MAX`] so sanitization can detect them.
    pub fn corrupt_row(&self, tag: u64, n: usize) -> Vec<u64> {
        let mut rng = self.sample_rng(TAG_CORRUPT, tag);
        (0..n)
            .map(|_| COUNTER_PLAUSIBLE_MAX.wrapping_mul(4) | rng.next_u64())
            .collect()
    }

    /// Multiplicative noise factors for one sample's `n` counters
    /// (all `1.0` when the plan is noiseless).
    pub fn noise_factors(&self, tag: u64, n: usize) -> Vec<f64> {
        if self.plan.noise_rel <= 0.0 {
            return vec![1.0; n];
        }
        let mut rng = self.sample_rng(TAG_NOISE, tag);
        (0..n)
            .map(|_| (1.0 + self.plan.noise_rel * rng.next_gaussian()).max(0.0))
            .collect()
    }

    /// Whether the primary predictor fails for the call identified by
    /// `tag` (callers use the request sequence number). A `true` roll is
    /// counted in `fault.injected_predict_failures_total`; the serving
    /// layer is expected to fall through the degraded predictor chain.
    pub fn predict_fault(&self, tag: u64) -> bool {
        if self.plan.predict_fail_prob <= 0.0 {
            return false;
        }
        let hit = self
            .sample_rng(TAG_PREDICT, tag)
            .next_bool(self.plan.predict_fail_prob);
        if hit {
            inject_metrics().predict_failures.inc();
        }
        hit
    }

    /// Virtual seconds of injected stage stall for the stage identified by
    /// `tag`, or `0.0` when the stage proceeds normally. Stalled stages
    /// overshoot the watchdog budget by 2–12x its latency scale so the
    /// watchdog reliably classifies them as stuck.
    pub fn stage_stall_s(&self, tag: u64) -> f64 {
        if self.plan.stall_prob <= 0.0 {
            return 0.0;
        }
        let mut rng = self.sample_rng(TAG_STALL, tag);
        if !rng.next_bool(self.plan.stall_prob) {
            return 0.0;
        }
        inject_metrics().stalls.inc();
        let scale = self.plan.latency_mean_s.max(0.1);
        scale * (2.0 + 10.0 * rng.next_f64())
    }

    fn sample_rng(&self, component: u64, tag: u64) -> Rng64 {
        self.stream.derive(component).rng(tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_presets_and_overrides() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse("none").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse("heavy").unwrap(), FaultPlan::heavy());
        let p = FaultPlan::parse("ci-default,crash=0.5,seed=99").unwrap();
        assert_eq!(p.crash_prob, 0.5);
        assert_eq!(p.seed, 99);
        assert_eq!(p.dropout_prob, FaultPlan::ci_default().dropout_prob);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("bogus").is_err());
        assert!(FaultPlan::parse("crash=two").is_err());
        assert!(FaultPlan::parse("crash=1.5").is_err());
        assert!(FaultPlan::parse("crash=-0.1").is_err());
        assert!(FaultPlan::parse("wat=0.1").is_err());
        assert!(matches!(
            FaultPlan::parse("bogus"),
            Err(StcaError::Usage(_))
        ));
    }

    #[test]
    fn parse_errors_name_key_value_and_valid_keys() {
        // an unknown key is named and the valid key set is listed
        let msg = FaultPlan::parse("heavy,wat=0.1").unwrap_err().to_string();
        assert!(msg.contains("\"wat\""), "{msg}");
        for key in FaultPlan::KEYS {
            assert!(msg.contains(key), "{msg} should list {key}");
        }
        // a bad value is quoted alongside its key and expected type
        let msg = FaultPlan::parse("crash=two").unwrap_err().to_string();
        assert!(msg.contains("crash") && msg.contains("\"two\""), "{msg}");
        // a malformed token lists both presets and keys, plus its position
        let msg = FaultPlan::parse("heavy,bogus").unwrap_err().to_string();
        assert!(
            msg.contains("\"bogus\"") && msg.contains("token 1"),
            "{msg}"
        );
        assert!(
            msg.contains("ci-default") && msg.contains("predict_fail"),
            "{msg}"
        );
        // out-of-range names the legal range
        let msg = FaultPlan::parse("crash=1.5").unwrap_err().to_string();
        assert!(msg.contains("crash=1.5") && msg.contains("[0, 1]"), "{msg}");
    }

    #[test]
    fn injector_is_deterministic_per_attempt() {
        let plan = FaultPlan::heavy();
        let a = plan.injector(0xAB, 0);
        let b = plan.injector(0xAB, 0);
        for tag in 0..64 {
            assert_eq!(a.sample_fault(tag), b.sample_fault(tag));
            assert_eq!(a.noise_factors(tag, 5), b.noise_factors(tag, 5));
        }
        assert_eq!(a.attempt_outcome().is_err(), b.attempt_outcome().is_err());
    }

    #[test]
    fn attempts_reroll_independently() {
        // With crash=0.5, 16 attempts virtually never agree on all rolls.
        let plan = FaultPlan::parse("crash=0.5,seed=3").unwrap();
        let outcomes: Vec<bool> = (0..16)
            .map(|a| plan.injector(1, a).attempt_outcome().is_err())
            .collect();
        assert!(outcomes.iter().any(|&c| c));
        assert!(outcomes.iter().any(|&c| !c));
    }

    #[test]
    fn sample_fault_rates_roughly_match() {
        let plan = FaultPlan::parse("dropout=0.2,corrupt=0.1,stuck=0.1,seed=5").unwrap();
        let inj = plan.injector(9, 0);
        let n = 20_000;
        let mut counts = [0usize; 4];
        for tag in 0..n {
            let idx = match inj.sample_fault(tag) {
                SampleFault::None => 0,
                SampleFault::Drop => 1,
                SampleFault::Corrupt => 2,
                SampleFault::Stuck => 3,
            };
            counts[idx] += 1;
        }
        let frac = |c: usize| c as f64 / n as f64;
        assert!((frac(counts[1]) - 0.2).abs() < 0.02, "drop {counts:?}");
        assert!((frac(counts[2]) - 0.1).abs() < 0.02, "corrupt {counts:?}");
        assert!((frac(counts[3]) - 0.1).abs() < 0.02, "stuck {counts:?}");
    }

    #[test]
    fn corrupt_rows_exceed_plausibility_bound() {
        let inj = FaultPlan::heavy().injector(2, 0);
        for v in inj.corrupt_row(7, 29) {
            assert!(v > COUNTER_PLAUSIBLE_MAX);
        }
    }

    #[test]
    fn predict_and_stall_hooks_are_deterministic_and_rate_matched() {
        let plan = FaultPlan::parse("predict_fail=0.25,stall=0.1,latency=0.2,seed=13").unwrap();
        let a = plan.injector(4, 0);
        let b = plan.injector(4, 0);
        let n = 20_000u64;
        let mut fails = 0usize;
        let mut stalls = 0usize;
        for tag in 0..n {
            assert_eq!(a.predict_fault(tag), b.predict_fault(tag));
            let s = a.stage_stall_s(tag);
            assert_eq!(s.to_bits(), b.stage_stall_s(tag).to_bits());
            if a.predict_fault(tag) {
                fails += 1;
            }
            if s > 0.0 {
                // stalls overshoot the watchdog latency scale
                assert!(s >= 2.0 * 0.2, "stall {s} too small to trip watchdog");
                stalls += 1;
            }
        }
        let frac = |c: usize| c as f64 / n as f64;
        assert!((frac(fails) - 0.25).abs() < 0.02, "predict_fail {fails}");
        assert!((frac(stalls) - 0.1).abs() < 0.02, "stall {stalls}");
    }

    #[test]
    fn shard_fault_keys_parse_and_reject_like_the_rest() {
        let p = FaultPlan::parse("shard_crash=0.2,shard_stall=0.1,shard_flap=0.05").unwrap();
        assert_eq!(p.shard_crash_prob, 0.2);
        assert_eq!(p.shard_stall_prob, 0.1);
        assert_eq!(p.shard_flap_prob, 0.05);
        assert!(p.is_active());

        // Unknown shard-ish keys are rejected and the message names the
        // full valid key set, shard keys included.
        for bad in ["shard_crash_prob=0.1", "shardcrash=0.1", "shard_wedge=0.1"] {
            let msg = FaultPlan::parse(bad).unwrap_err().to_string();
            let key = bad.split('=').next().unwrap_or_default();
            assert!(msg.contains(&format!("\"{key}\"")), "{msg}");
            for valid in ["shard_crash", "shard_stall", "shard_flap"] {
                assert!(msg.contains(valid), "{msg} should list {valid}");
            }
        }
        // Shard fault rates are probabilities: range-checked like the rest.
        let msg = FaultPlan::parse("shard_crash=1.5").unwrap_err().to_string();
        assert!(msg.contains("[0, 1]"), "{msg}");
        assert!(FaultPlan::parse("shard_flap=-0.1").is_err());
        assert!(FaultPlan::parse("shard_stall=nan").is_err());
    }

    #[test]
    fn shard_faults_are_pure_in_seed_shard_and_epoch() {
        let plan = FaultPlan::heavy();
        let again = FaultPlan::heavy();
        let mut crashes = 0usize;
        for shard in 0..8u32 {
            for epoch in 0..256u64 {
                assert_eq!(
                    plan.shard_crash(shard, epoch),
                    again.shard_crash(shard, epoch)
                );
                assert_eq!(
                    plan.shard_flap(shard, epoch),
                    again.shard_flap(shard, epoch)
                );
                assert_eq!(
                    plan.shard_stall_s(shard, epoch, 5.0).to_bits(),
                    again.shard_stall_s(shard, epoch, 5.0).to_bits()
                );
                if plan.shard_crash(shard, epoch) {
                    crashes += 1;
                }
            }
        }
        // ~10% crash rate over 2048 rolls: comfortably non-degenerate.
        assert!(crashes > 100 && crashes < 350, "crashes {crashes}");

        // Distinct shards and epochs roll independently: with eight shards
        // and 256 epochs the columns cannot all agree.
        let col = |s: u32| -> Vec<bool> { (0..256).map(|e| plan.shard_crash(s, e)).collect() };
        assert_ne!(col(0), col(1));

        // Stall durations land in the documented 25–75% band of the epoch.
        for shard in 0..8u32 {
            for epoch in 0..256u64 {
                let s = plan.shard_stall_s(shard, epoch, 5.0);
                assert!(s == 0.0 || (1.25..=3.75).contains(&s), "stall {s}");
            }
        }
        // The no-fault plan never rolls shard faults.
        let none = FaultPlan::none();
        assert!(!none.shard_crash(0, 0));
        assert!(!none.shard_flap(0, 0));
        assert_eq!(none.shard_stall_s(0, 0, 5.0), 0.0);
    }

    #[test]
    fn lifecycle_fault_keys_parse_and_reject_like_the_rest() {
        let p = FaultPlan::parse(
            "drift_burst=0.3,retrain_fail=0.2,retrain_slow=0.1,promote_corrupt=0.25",
        )
        .unwrap();
        assert_eq!(p.drift_burst_prob, 0.3);
        assert_eq!(p.retrain_fail_prob, 0.2);
        assert_eq!(p.retrain_slow_prob, 0.1);
        assert_eq!(p.promote_corrupt_prob, 0.25);
        assert!(p.is_active());

        // Unknown lifecycle-ish keys are rejected and the message names
        // the full valid key set, all four lifecycle keys included.
        for bad in ["drift=0.1", "retrain=0.1", "promote_corrupt_prob=0.1"] {
            let msg = FaultPlan::parse(bad).unwrap_err().to_string();
            let key = bad.split('=').next().unwrap_or_default();
            assert!(msg.contains(&format!("\"{key}\"")), "{msg}");
            for valid in FaultPlan::KEYS {
                assert!(msg.contains(valid), "{msg} should list {valid}");
            }
        }
        // Lifecycle fault rates are probabilities: range-checked too.
        for bad in [
            "drift_burst=1.5",
            "retrain_fail=-0.1",
            "retrain_slow=nan",
            "promote_corrupt=2",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} must be rejected");
        }
        // The presets carry non-zero lifecycle rates.
        assert!(FaultPlan::ci_default().drift_burst_prob > 0.0);
        assert!(FaultPlan::heavy().promote_corrupt_prob > 0.0);
    }

    #[test]
    fn lifecycle_faults_are_pure_in_seed_shard_and_epoch() {
        let plan = FaultPlan::heavy();
        let again = FaultPlan::heavy();
        let mut bursts = 0usize;
        for shard in 0..8u32 {
            for epoch in 0..256u64 {
                assert_eq!(
                    plan.drift_burst_offset(shard, epoch).to_bits(),
                    again.drift_burst_offset(shard, epoch).to_bits()
                );
                assert_eq!(
                    plan.retrain_fail(shard, epoch),
                    again.retrain_fail(shard, epoch)
                );
                assert_eq!(
                    plan.retrain_slow_s(shard, epoch, 1.0).to_bits(),
                    again.retrain_slow_s(shard, epoch, 1.0).to_bits()
                );
                assert_eq!(
                    plan.promote_corrupt(shard, epoch),
                    again.promote_corrupt(shard, epoch)
                );
                let off = plan.drift_burst_offset(shard, epoch);
                assert!(off == 0.0 || (0.6..=1.5).contains(&off), "offset {off}");
                if off > 0.0 {
                    bursts += 1;
                }
                let slow = plan.retrain_slow_s(shard, epoch, 1.0);
                assert!(slow == 0.0 || (1.5..=4.0).contains(&slow), "slow {slow}");
            }
        }
        // ~20% burst rate over 2048 rolls: comfortably non-degenerate.
        assert!(bursts > 250 && bursts < 600, "bursts {bursts}");

        // Distinct shards roll independently.
        let col = |s: u32| -> Vec<u64> {
            (0..256)
                .map(|e| plan.drift_burst_offset(s, e).to_bits())
                .collect()
        };
        assert_ne!(col(0), col(1));

        // The no-fault plan never rolls lifecycle faults.
        let none = FaultPlan::none();
        assert_eq!(none.drift_burst_offset(0, 0), 0.0);
        assert!(!none.retrain_fail(0, 0));
        assert_eq!(none.retrain_slow_s(0, 0, 1.0), 0.0);
        assert!(!none.promote_corrupt(0, 0));
    }

    #[test]
    fn inactive_plan_is_a_no_op() {
        let inj = FaultPlan::none().injector(1, 0);
        assert!(!inj.is_active());
        assert!(inj.attempt_outcome().is_ok());
        assert_eq!(inj.injected_latency_s(), 0.0);
        assert_eq!(inj.sample_fault(3), SampleFault::None);
        assert_eq!(inj.noise_factors(3, 4), vec![1.0; 4]);
        assert!(!inj.predict_fault(3));
        assert_eq!(inj.stage_stall_s(3), 0.0);
    }
}
