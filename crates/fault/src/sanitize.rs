//! Scrubbing helpers for feature values headed into model training.
//!
//! Counter-trace sanitization (stuck rows, implausible u64 counters) lives
//! next to the trace types in `stca-profiler`; this module holds the
//! crate-neutral f64 layer — non-finite detection and repair — plus the
//! plausibility bound both layers share, and the `fault.rows_rejected_total`
//! metric used everywhere a training row is refused.

use std::sync::{Arc, OnceLock};

/// Upper bound on a believable raw counter value per sampling window.
///
/// A 0.2–1 Hz window on the simulated machine moves well under 2⁴⁰ events;
/// injected corruption writes values above `4 ×` this bound so detection
/// has margin on both sides.
pub const COUNTER_PLAUSIBLE_MAX: u64 = 1 << 48;

fn rows_rejected() -> &'static Arc<stca_obs::Counter> {
    static C: OnceLock<Arc<stca_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| stca_obs::counter("fault.rows_rejected_total"))
}

fn values_scrubbed() -> &'static Arc<stca_obs::Counter> {
    static C: OnceLock<Arc<stca_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| stca_obs::counter("fault.values_scrubbed_total"))
}

/// True when every value is finite (no NaN, no ±Inf).
pub fn all_finite(values: &[f64]) -> bool {
    values.iter().all(|v| v.is_finite())
}

/// Replace non-finite values with 0.0 in place; returns how many were
/// repaired (also counted on `fault.values_scrubbed_total`).
pub fn scrub_non_finite(values: &mut [f64]) -> usize {
    let mut repaired = 0;
    for v in values.iter_mut() {
        if !v.is_finite() {
            *v = 0.0;
            repaired += 1;
        }
    }
    if repaired > 0 {
        values_scrubbed().add(repaired as u64);
    }
    repaired
}

/// Record that a training/dataset row was rejected, with the reason logged
/// at warn level. Counted on `fault.rows_rejected_total`.
pub fn reject_row(context: &str, reason: &str) {
    rows_rejected().inc();
    stca_obs::warn!("rejecting row ({context}): {reason}");
}

/// How many rows have been rejected so far (for tests and reports).
pub fn rows_rejected_total() -> u64 {
    rows_rejected().get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_repairs_only_non_finite() {
        let mut v = [1.0, f64::NAN, -2.5, f64::INFINITY, f64::NEG_INFINITY];
        assert!(!all_finite(&v));
        assert_eq!(scrub_non_finite(&mut v), 3);
        assert_eq!(v, [1.0, 0.0, -2.5, 0.0, 0.0]);
        assert!(all_finite(&v));
        assert_eq!(scrub_non_finite(&mut v), 0);
    }

    #[test]
    fn reject_row_counts() {
        let before = rows_rejected_total();
        reject_row("test", "ea is NaN");
        assert_eq!(rows_rejected_total(), before + 1);
    }
}
