//! JSON checkpoint/resume for long-running computations.
//!
//! A [`Checkpoint`] is a keyed map of completed work units persisted as one
//! JSON document. Long runs (policy-grid exploration, dataset builds) `put`
//! each finished cell and `save` at batch boundaries; after a kill, the next
//! run `load_or_new`s the same path and skips every cell already present —
//! producing output bit-identical to an uninterrupted run.
//!
//! Two design points keep resume exact:
//!
//! * **Floats are stored as hex bit patterns** (`"3fe0000000000000"`), not
//!   decimal numbers — resume must reproduce `f64`s to the bit, including
//!   NaN payloads, which JSON numbers cannot carry.
//! * **The `meta` string fingerprints the inputs** (grid, profiles, fault
//!   plan…). A checkpoint whose meta does not match is stale — it is
//!   discarded with a warning rather than silently mixing results from
//!   different inputs.
//!
//! Saves write to `<path>.tmp` and rename, so a kill mid-save leaves the
//! previous complete checkpoint intact.

use crate::error::StcaError;
use stca_obs::json::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

const FORMAT: &str = "stca-checkpoint";
const VERSION: f64 = 1.0;

struct CheckpointMetrics {
    saves: Arc<stca_obs::Counter>,
    entries_loaded: Arc<stca_obs::Counter>,
    resets: Arc<stca_obs::Counter>,
}

fn ckpt_metrics() -> &'static CheckpointMetrics {
    static METRICS: OnceLock<CheckpointMetrics> = OnceLock::new();
    METRICS.get_or_init(|| CheckpointMetrics {
        saves: stca_obs::counter("fault.checkpoint_saves_total"),
        entries_loaded: stca_obs::counter("fault.checkpoint_entries_loaded_total"),
        resets: stca_obs::counter("fault.checkpoint_resets_total"),
    })
}

/// Encode an `f64` for checkpoint storage: the hex of its bit pattern.
pub fn f64_to_value(x: f64) -> Value {
    Value::String(format!("{:016x}", x.to_bits()))
}

/// Decode an `f64` stored by [`f64_to_value`].
pub fn value_to_f64(v: &Value) -> Option<f64> {
    match v {
        Value::String(s) if s.len() == 16 => u64::from_str_radix(s, 16).ok().map(f64::from_bits),
        _ => None,
    }
}

/// Encode a slice of `f64`s as an array of bit-pattern strings.
pub fn f64s_to_value(xs: &[f64]) -> Value {
    Value::Array(xs.iter().map(|&x| f64_to_value(x)).collect())
}

/// Decode an array stored by [`f64s_to_value`]; `None` on any malformed
/// element.
pub fn value_to_f64s(v: &Value) -> Option<Vec<f64>> {
    match v {
        Value::Array(items) => items.iter().map(value_to_f64).collect(),
        _ => None,
    }
}

/// FNV-1a over a stream of u64 words — cheap input fingerprinting for
/// checkpoint meta strings.
pub fn fingerprint(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Fingerprint a slice of floats by their bit patterns.
pub fn fingerprint_f64s(xs: &[f64]) -> u64 {
    fingerprint(xs.iter().map(|x| x.to_bits()))
}

/// A keyed, resumable store of completed work units.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    meta: String,
    entries: BTreeMap<String, Value>,
    resumed: usize,
    dirty: bool,
}

impl Checkpoint {
    /// Open the checkpoint at `path`, keeping its entries only when its
    /// meta string matches `meta` exactly. A missing file, a stale meta, or
    /// an unparseable document all yield an empty checkpoint (the latter
    /// two with a warning and a `fault.checkpoint_resets_total` tick); only
    /// real I/O failures are errors.
    pub fn load_or_new(path: &Path, meta: &str) -> Result<Self, StcaError> {
        let mut ckpt = Checkpoint {
            path: path.to_path_buf(),
            meta: meta.to_string(),
            entries: BTreeMap::new(),
            resumed: 0,
            dirty: false,
        };
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ckpt),
            Err(e) => return Err(StcaError::io(path.display().to_string(), e)),
        };
        match Self::decode(&text, meta) {
            Ok(entries) => {
                ckpt.resumed = entries.len();
                ckpt.entries = entries;
                ckpt_metrics().entries_loaded.add(ckpt.resumed as u64);
                stca_obs::info!(
                    "resuming from checkpoint {} ({} entries)",
                    path.display(),
                    ckpt.resumed
                );
            }
            Err(reason) => {
                ckpt_metrics().resets.inc();
                stca_obs::warn!(
                    "discarding checkpoint {}: {reason}; starting fresh",
                    path.display()
                );
            }
        }
        Ok(ckpt)
    }

    fn decode(text: &str, want_meta: &str) -> Result<BTreeMap<String, Value>, String> {
        let doc = Value::parse(text).map_err(|e| e.to_string())?;
        match doc.get("format") {
            Some(Value::String(s)) if s == FORMAT => {}
            _ => return Err(format!("not a {FORMAT} document")),
        }
        match doc.get("version").and_then(Value::as_f64) {
            Some(v) if v == VERSION => {}
            other => return Err(format!("unsupported version {other:?}")),
        }
        match doc.get("meta") {
            Some(Value::String(m)) if m == want_meta => {}
            Some(Value::String(m)) => {
                return Err(format!("stale inputs (have {m:?}, want {want_meta:?})"))
            }
            _ => return Err("missing meta".to_string()),
        }
        match doc.get("entries") {
            Some(Value::Object(map)) => Ok(map.clone()),
            _ => Err("missing entries object".to_string()),
        }
    }

    /// The path this checkpoint persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of entries carried over from disk at load time.
    pub fn resumed(&self) -> usize {
        self.resumed
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the checkpoint holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a completed work unit.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Record a completed work unit (persisted on the next [`save`]).
    ///
    /// [`save`]: Checkpoint::save
    pub fn put(&mut self, key: impl Into<String>, value: Value) {
        self.entries.insert(key.into(), value);
        self.dirty = true;
    }

    /// Persist to disk atomically (write `<path>.tmp`, rename over `path`).
    /// A no-op when nothing changed since the last save.
    pub fn save(&mut self) -> Result<(), StcaError> {
        if !self.dirty {
            return Ok(());
        }
        let mut doc = BTreeMap::new();
        doc.insert("format".to_string(), Value::String(FORMAT.to_string()));
        doc.insert("version".to_string(), Value::Number(VERSION));
        doc.insert("meta".to_string(), Value::String(self.meta.clone()));
        doc.insert("entries".to_string(), Value::Object(self.entries.clone()));
        let text = Value::Object(doc).to_string();
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, &text).map_err(|e| StcaError::io(tmp.display().to_string(), e))?;
        std::fs::rename(&tmp, &self.path)
            .map_err(|e| StcaError::io(self.path.display().to_string(), e))?;
        self.dirty = false;
        ckpt_metrics().saves.inc();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(label: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("stca-ckpt-{label}-{}-{n}.json", std::process::id()))
    }

    #[test]
    fn f64_encoding_is_bit_exact_and_nan_safe() {
        for x in [
            0.0,
            -0.0,
            1.5,
            f64::MIN_POSITIVE,
            f64::NAN,
            f64::INFINITY,
            -3.25e-300,
        ] {
            let v = f64_to_value(x);
            let back = value_to_f64(&v).expect("decodes");
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
        let xs = [1.0, f64::NAN, -2.0];
        let back = value_to_f64s(&f64s_to_value(&xs)).expect("decodes");
        assert_eq!(
            back.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn save_load_roundtrip() {
        let path = temp_path("roundtrip");
        let mut a = Checkpoint::load_or_new(&path, "meta-v1").expect("new");
        assert!(a.is_empty());
        a.put("cell.0", f64s_to_value(&[1.25, f64::NAN]));
        a.put("cell.1", Value::String("failed: boom".into()));
        a.save().expect("save");
        a.save().expect("idempotent save");

        let b = Checkpoint::load_or_new(&path, "meta-v1").expect("load");
        assert_eq!(b.resumed(), 2);
        assert_eq!(
            value_to_f64s(b.get("cell.0").expect("present"))
                .expect("floats")
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            vec![1.25f64.to_bits(), f64::NAN.to_bits()]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_meta_resets() {
        let path = temp_path("stale");
        let mut a = Checkpoint::load_or_new(&path, "inputs-A").expect("new");
        a.put("k", Value::Number(1.0));
        a.save().expect("save");
        let b = Checkpoint::load_or_new(&path, "inputs-B").expect("load");
        assert!(b.is_empty(), "stale checkpoint must be discarded");
        assert_eq!(b.resumed(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_file_resets_instead_of_erroring() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "{ not json").expect("write");
        let c = Checkpoint::load_or_new(&path, "m").expect("load");
        assert!(c.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        assert_ne!(fingerprint([1, 2, 3]), fingerprint([3, 2, 1]));
        assert_eq!(fingerprint_f64s(&[1.0, 2.0]), fingerprint_f64s(&[1.0, 2.0]));
        assert_ne!(fingerprint_f64s(&[1.0, 2.0]), fingerprint_f64s(&[1.0, 2.5]));
    }
}
