//! The typed error hierarchy for the profiling → training → search path.
//!
//! One enum rather than per-crate error types: every stage of the pipeline
//! (experiment execution, trace sanitization, storage, checkpointing, CLI
//! argument handling) fails in one vocabulary, so retry logic and the CLI
//! exit-code policy can pattern-match without conversion layers.

use std::fmt;
use std::io;

/// Errors surfaced by the fault-tolerant STCA pipeline.
#[derive(Debug)]
pub enum StcaError {
    /// A fault plan decided this experiment attempt crashes.
    InjectedCrash {
        /// Seed identifying the experiment run the crash was keyed to.
        run_key: u64,
        /// Attempt number (0-based) within the retry loop.
        attempt: u32,
    },
    /// A fault plan decided this experiment attempt times out.
    InjectedTimeout {
        /// Seed identifying the experiment run the timeout was keyed to.
        run_key: u64,
        /// Attempt number (0-based) within the retry loop.
        attempt: u32,
        /// Virtual seconds spent before the timeout fired.
        waited_s: f64,
    },
    /// Retries were exhausted without a successful attempt.
    RetriesExhausted {
        /// Total attempts made (initial try plus retries).
        attempts: u32,
        /// The error from the final attempt.
        last: Box<StcaError>,
    },
    /// A counter trace was too damaged to sanitize into training data.
    InvalidTrace {
        /// Human-readable reason (e.g. "14/20 samples corrupt").
        reason: String,
    },
    /// An input failed validation before any work was attempted.
    InvalidInput {
        /// What was invalid and why.
        what: String,
    },
    /// A pool task panicked; the payload was caught and stringified.
    TaskPanicked {
        /// The panic message, or a placeholder for non-string payloads.
        what: String,
    },
    /// An I/O operation failed; `path` says where.
    Io {
        /// The file or directory involved.
        path: String,
        /// The underlying OS error.
        source: io::Error,
    },
    /// On-disk data (profile store, checkpoint) failed to parse.
    Format {
        /// What was malformed, with file/line context where available.
        context: String,
    },
    /// A checkpoint could not be loaded or saved.
    Checkpoint {
        /// What went wrong.
        reason: String,
    },
    /// The user invoked the CLI incorrectly (bad flag, missing arg).
    Usage(String),
}

impl StcaError {
    /// Process exit code for this error: 2 for usage mistakes, 1 for
    /// everything else — so scripts can tell "fix your command line" from
    /// "the run failed".
    pub fn exit_code(&self) -> u8 {
        match self {
            StcaError::Usage(_) => 2,
            _ => 1,
        }
    }

    /// Whether retrying the same operation could plausibly succeed.
    ///
    /// Injected crashes/timeouts, task panics, and damaged traces are
    /// transient: each attempt re-rolls the fault plan. Bad inputs, I/O
    /// failures, parse errors, and exhausted retries are not.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            StcaError::InjectedCrash { .. }
                | StcaError::InjectedTimeout { .. }
                | StcaError::TaskPanicked { .. }
                | StcaError::InvalidTrace { .. }
        )
    }

    /// Convenience constructor for usage errors.
    pub fn usage(msg: impl Into<String>) -> Self {
        StcaError::Usage(msg.into())
    }

    /// Convenience constructor for input-validation errors.
    pub fn invalid_input(what: impl Into<String>) -> Self {
        StcaError::InvalidInput { what: what.into() }
    }

    /// Wrap an I/O error with the path it happened on.
    pub fn io(path: impl Into<String>, source: io::Error) -> Self {
        StcaError::Io {
            path: path.into(),
            source,
        }
    }
}

impl fmt::Display for StcaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StcaError::InjectedCrash { run_key, attempt } => {
                write!(f, "injected crash (run {run_key:#x}, attempt {attempt})")
            }
            StcaError::InjectedTimeout {
                run_key,
                attempt,
                waited_s,
            } => write!(
                f,
                "injected timeout after {waited_s:.1}s (run {run_key:#x}, attempt {attempt})"
            ),
            StcaError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
            StcaError::InvalidTrace { reason } => write!(f, "invalid counter trace: {reason}"),
            StcaError::InvalidInput { what } => write!(f, "invalid input: {what}"),
            StcaError::TaskPanicked { what } => write!(f, "worker task panicked: {what}"),
            StcaError::Io { path, source } => write!(f, "{path}: {source}"),
            StcaError::Format { context } => write!(f, "malformed data: {context}"),
            StcaError::Checkpoint { reason } => write!(f, "checkpoint error: {reason}"),
            StcaError::Usage(msg) => write!(f, "usage error: {msg}"),
        }
    }
}

impl std::error::Error for StcaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StcaError::Io { source, .. } => Some(source),
            StcaError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

/// Flag-parse failures are usage errors (exit 2).
impl From<stca_util::ArgError> for StcaError {
    fn from(e: stca_util::ArgError) -> Self {
        StcaError::Usage(e.to_string())
    }
}

/// Spec-parse failures (fault plans, scenario files) are usage errors
/// (exit 2); the rendered message names the offending key/value and the
/// valid key set.
impl From<stca_util::SpecError> for StcaError {
    fn from(e: stca_util::SpecError) -> Self {
        StcaError::Usage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_split_usage_from_runtime() {
        assert_eq!(StcaError::usage("bad flag").exit_code(), 2);
        assert_eq!(
            StcaError::InvalidTrace { reason: "x".into() }.exit_code(),
            1
        );
        assert_eq!(
            StcaError::io("f.txt", io::Error::new(io::ErrorKind::NotFound, "gone")).exit_code(),
            1
        );
    }

    #[test]
    fn transient_classification() {
        assert!(StcaError::InjectedCrash {
            run_key: 1,
            attempt: 0
        }
        .is_transient());
        assert!(StcaError::TaskPanicked { what: "p".into() }.is_transient());
        assert!(!StcaError::usage("x").is_transient());
        assert!(!StcaError::RetriesExhausted {
            attempts: 4,
            last: Box::new(StcaError::InjectedCrash {
                run_key: 1,
                attempt: 3
            })
        }
        .is_transient());
    }

    #[test]
    fn display_includes_context() {
        let e = StcaError::RetriesExhausted {
            attempts: 4,
            last: Box::new(StcaError::InjectedTimeout {
                run_key: 0xBEEF,
                attempt: 3,
                waited_s: 2.5,
            }),
        };
        let msg = e.to_string();
        assert!(msg.contains("4 attempts"), "{msg}");
        assert!(msg.contains("0xbeef"), "{msg}");
    }
}
