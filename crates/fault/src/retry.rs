//! Bounded retry with exponential backoff on a virtual clock.
//!
//! Real profiling harnesses sleep between retries; a deterministic
//! reproduction must not, or wall time (and any time-derived state) would
//! vary run to run. Backoff here is *accounted* instead of slept: each
//! retry's delay — base × multiplierᵃᵗᵗᵉᵐᵖᵗ, widened by seeded jitter — is
//! accumulated on a virtual clock and recorded to the
//! `fault.backoff_virtual_seconds` histogram, so the schedule is observable
//! and reproducible while the loop itself runs at full speed.

use crate::error::StcaError;
use stca_util::SeedStream;
use std::sync::{Arc, OnceLock};

// Decorrelates the jitter stream from every other consumer of a run seed.
const JITTER_SALT: u64 = 0xBACC_0FF5;

struct RetryMetrics {
    retries: Arc<stca_obs::Counter>,
    recovered: Arc<stca_obs::Counter>,
    giveups: Arc<stca_obs::Counter>,
    backoff_s: Arc<stca_obs::Histogram>,
}

fn retry_metrics() -> &'static RetryMetrics {
    static METRICS: OnceLock<RetryMetrics> = OnceLock::new();
    METRICS.get_or_init(|| RetryMetrics {
        retries: stca_obs::counter("fault.retries_total"),
        recovered: stca_obs::counter("fault.retries_recovered_total"),
        giveups: stca_obs::counter("fault.retry_giveups_total"),
        backoff_s: stca_obs::histogram("fault.backoff_virtual_seconds"),
    })
}

/// Retry schedule: how many retries, and how the backoff grows.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (total attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// Backoff before the first retry, virtual seconds.
    pub base_backoff_s: f64,
    /// Growth factor per retry.
    pub multiplier: f64,
    /// Uniform jitter as a fraction of the delay (0.1 = ±10%).
    pub jitter_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_s: 0.5,
            multiplier: 2.0,
            jitter_frac: 0.1,
        }
    }
}

impl RetryPolicy {
    /// Default schedule with a different retry budget.
    pub fn with_max_retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            ..Default::default()
        }
    }

    /// The policy that never retries: one attempt, errors surface as-is.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..Default::default()
        }
    }
}

/// Run `op` under the retry policy. `op` receives the 0-based attempt
/// number (so callers can re-key fault injection per attempt).
///
/// Transient errors (see [`StcaError::is_transient`]) are retried up to
/// `policy.max_retries` times with seeded-jitter exponential backoff on the
/// virtual clock; the final failure is wrapped in
/// [`StcaError::RetriesExhausted`] and every registered error-dump hook
/// ([`crate::hook`]) fires with it before it is returned. Non-transient
/// errors return immediately.
pub fn with_retry<T>(
    policy: &RetryPolicy,
    seed: u64,
    mut op: impl FnMut(u32) -> Result<T, StcaError>,
) -> Result<T, StcaError> {
    let jitter = SeedStream::new(seed ^ JITTER_SALT);
    let mut virtual_clock_s = 0.0_f64;
    let mut attempt = 0u32;
    loop {
        match op(attempt) {
            Ok(v) => {
                if attempt > 0 {
                    retry_metrics().recovered.inc();
                    stca_obs::debug!(
                        "run {seed:#x} recovered on attempt {attempt} \
                         ({virtual_clock_s:.2}s virtual backoff)"
                    );
                }
                return Ok(v);
            }
            Err(e) if !e.is_transient() => return Err(e),
            Err(e) if attempt >= policy.max_retries => {
                retry_metrics().giveups.inc();
                let terminal = StcaError::RetriesExhausted {
                    attempts: attempt + 1,
                    last: Box::new(e),
                };
                // give registered diagnostics (flight-recorder dumps,
                // metric snapshots) one shot at the terminal error
                crate::hook::fire_error_dump_hooks(&terminal);
                return Err(terminal);
            }
            Err(e) => {
                let base = policy.base_backoff_s * policy.multiplier.powi(attempt as i32);
                let u = jitter.rng(attempt as u64).next_f64();
                let delay = base * (1.0 + policy.jitter_frac * (2.0 * u - 1.0));
                virtual_clock_s += delay;
                retry_metrics().retries.inc();
                retry_metrics().backoff_s.record(delay);
                stca_obs::debug!(
                    "run {seed:#x} attempt {attempt} failed ({e}); retrying after \
                     {delay:.2}s virtual backoff"
                );
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(attempt: u32) -> StcaError {
        StcaError::InjectedCrash {
            run_key: 7,
            attempt,
        }
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let policy = RetryPolicy::with_max_retries(3);
        let out = with_retry(&policy, 1, |attempt| {
            if attempt < 2 {
                Err(crash(attempt))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 2);
    }

    #[test]
    fn exhaustion_wraps_last_error() {
        let policy = RetryPolicy::with_max_retries(2);
        let out = with_retry::<()>(&policy, 1, |attempt| Err(crash(attempt)));
        match out {
            Err(StcaError::RetriesExhausted { attempts, last }) => {
                assert_eq!(attempts, 3);
                assert!(matches!(*last, StcaError::InjectedCrash { attempt: 2, .. }));
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn non_transient_errors_bail_immediately() {
        let mut calls = 0;
        let out = with_retry::<()>(&RetryPolicy::default(), 1, |_| {
            calls += 1;
            Err(StcaError::invalid_input("bad spec"))
        });
        assert!(matches!(out, Err(StcaError::InvalidInput { .. })));
        assert_eq!(calls, 1);
    }

    #[test]
    fn zero_retry_policy_runs_once() {
        let mut calls = 0;
        let out = with_retry::<()>(&RetryPolicy::none(), 1, |a| {
            calls += 1;
            Err(crash(a))
        });
        assert_eq!(calls, 1);
        assert!(matches!(
            out,
            Err(StcaError::RetriesExhausted { attempts: 1, .. })
        ));
    }

    #[test]
    fn attempt_numbers_are_sequential() {
        let mut seen = Vec::new();
        let _ = with_retry::<()>(&RetryPolicy::with_max_retries(3), 9, |a| {
            seen.push(a);
            Err(crash(a))
        });
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }
}
