//! # stca-fault
//!
//! Deterministic fault injection and the tolerance machinery that survives
//! it — `std` only.
//!
//! The paper's Stage-1 profiling runs for hours against real hardware:
//! counter sampling drops samples, returns garbage after phase changes, and
//! individual experiment runs crash or time out. This crate makes that
//! hostile world *reproducible* so the rest of the pipeline can be hardened
//! against it and tested under it:
//!
//! * [`plan::FaultPlan`] — a seeded description of what goes wrong and how
//!   often (run crashes, injected timeouts/latency, sample dropout, counter
//!   corruption, stuck sensors, measurement noise). Every decision is drawn
//!   from a tagged [`stca_util::SeedStream`] keyed by `(plan seed, run key,
//!   attempt, sample)`, never from shared mutable state, so the same plan
//!   produces bit-identical faults at any `--threads` value.
//! * [`error::StcaError`] — the typed error hierarchy that replaces
//!   `unwrap`/`panic!` on the profiler → dataset → training → policy-search
//!   path, with usage-vs-runtime exit codes for the CLI.
//! * [`retry`] — bounded retry with exponential backoff on a *virtual*
//!   clock (no wall-clock sleeping, so retried pipelines stay deterministic
//!   and fast) and seeded jitter.
//! * [`sanitize`] — scrubbing helpers for non-finite feature values.
//! * [`checkpoint`] — a JSON checkpoint store so long runs (policy-grid
//!   exploration, dataset builds) resume from the last completed cell after
//!   a kill, bit-identically.
//!
//! Everything is observable through `stca-obs` under the `fault.*` metric
//! namespace.

pub mod checkpoint;
pub mod error;
pub mod hook;
pub mod plan;
pub mod retry;
pub mod sanitize;

pub use checkpoint::Checkpoint;
pub use error::StcaError;
pub use hook::{fire_error_dump_hooks, register_error_dump_hook, HookGuard};
pub use plan::{FaultInjector, FaultPlan, SampleFault};
pub use retry::{with_retry, RetryPolicy};
