//! Error-dump hooks: process-wide callbacks fired when a retried
//! operation gives up for good.
//!
//! Higher layers often hold diagnostic state that is worth persisting at
//! the moment a failure becomes terminal — a flight recorder of recent
//! request traces, a metrics snapshot, a partial checkpoint. This crate
//! cannot know about any of them (it sits near the bottom of the
//! dependency graph), so it exposes a registry instead: callers register
//! a closure, and [`with_retry`](crate::with_retry) fires every
//! registered hook with the terminal error right before returning
//! [`StcaError::RetriesExhausted`]. The CLI, for example, registers a
//! closure that dumps the active trace flight recorder to disk.
//!
//! Hooks are diagnostics, not control flow: they cannot veto or rewrite
//! the error, they run on the failing thread, and a hook that panics
//! is caught and counted (`fault.error_dump_hook_panics_total`) rather
//! than taking the pipeline down with it.

use crate::error::StcaError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

type Hook = Box<dyn Fn(&StcaError) + Send + Sync>;

fn registry() -> &'static Mutex<Vec<(u64, Hook)>> {
    static REGISTRY: OnceLock<Mutex<Vec<(u64, Hook)>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Unregisters its hook when dropped, so a scope-local hook (say, one
/// dump file per CLI invocation) cannot outlive the state it captures.
#[must_use = "dropping the guard immediately unregisters the hook"]
pub struct HookGuard {
    id: u64,
}

impl Drop for HookGuard {
    fn drop(&mut self) {
        let mut hooks = registry().lock().unwrap_or_else(PoisonError::into_inner);
        hooks.retain(|(id, _)| *id != self.id);
    }
}

/// Register `hook` to run whenever a retried operation exhausts its
/// budget. Returns a guard that unregisters it on drop.
pub fn register_error_dump_hook(hook: impl Fn(&StcaError) + Send + Sync + 'static) -> HookGuard {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let mut hooks = registry().lock().unwrap_or_else(PoisonError::into_inner);
    hooks.push((id, Box::new(hook)));
    HookGuard { id }
}

/// Fire every registered hook with `err`. Called by
/// [`with_retry`](crate::with_retry) on the give-up path; other terminal
/// failure sites may call it too.
pub fn fire_error_dump_hooks(err: &StcaError) {
    let hooks = registry().lock().unwrap_or_else(PoisonError::into_inner);
    if hooks.is_empty() {
        return;
    }
    stca_obs::counter("fault.error_dump_hooks_fired_total").add(hooks.len() as u64);
    for (_, hook) in hooks.iter() {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| hook(err)));
        if caught.is_err() {
            stca_obs::counter("fault.error_dump_hook_panics_total").inc();
            stca_obs::error!("an error-dump hook panicked; continuing");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retry::{with_retry, RetryPolicy};
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn crash() -> StcaError {
        StcaError::InjectedCrash {
            run_key: 1,
            attempt: 0,
        }
    }

    #[test]
    fn hooks_fire_on_retry_exhaustion_with_the_terminal_error() {
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let _guard = register_error_dump_hook(move |err| {
            assert!(matches!(err, StcaError::RetriesExhausted { .. }));
            seen2.fetch_add(1, Ordering::SeqCst);
        });
        let out = with_retry::<()>(&RetryPolicy::none(), 3, |_| Err(crash()));
        assert!(matches!(out, Err(StcaError::RetriesExhausted { .. })));
        assert_eq!(seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn hooks_do_not_fire_on_recovery_or_non_transient_errors() {
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let _guard = register_error_dump_hook(move |_| {
            seen2.fetch_add(1, Ordering::SeqCst);
        });
        let ok = with_retry(&RetryPolicy::with_max_retries(2), 3, |attempt| {
            if attempt == 0 {
                Err(crash())
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(ok.unwrap(), 1);
        let bail = with_retry::<()>(&RetryPolicy::default(), 3, |_| {
            Err(StcaError::invalid_input("bad spec"))
        });
        assert!(matches!(bail, Err(StcaError::InvalidInput { .. })));
        assert_eq!(seen.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn dropping_the_guard_unregisters() {
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let guard = register_error_dump_hook(move |_| {
            seen2.fetch_add(1, Ordering::SeqCst);
        });
        drop(guard);
        let _ = with_retry::<()>(&RetryPolicy::none(), 3, |_| Err(crash()));
        assert_eq!(seen.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn a_panicking_hook_is_contained() {
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let _bad = register_error_dump_hook(|_| panic!("boom"));
        let _good = register_error_dump_hook(move |_| {
            seen2.fetch_add(1, Ordering::SeqCst);
        });
        let out = with_retry::<()>(&RetryPolicy::none(), 3, |_| Err(crash()));
        assert!(matches!(out, Err(StcaError::RetriesExhausted { .. })));
        // later hooks still ran despite the earlier panic
        assert_eq!(seen.load(Ordering::SeqCst), 1);
    }
}
