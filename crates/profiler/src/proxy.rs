//! The proxy service (§4 Implementation).
//!
//! Each collocated service sits behind a proxy that queues incoming queries,
//! monitors the response time of every outstanding query, and drives the
//! class-of-service switch: when a query's time in system crosses the STAP
//! timeout, the whole service switches to the short-term allocation setting
//! (*"if multiple queries were outstanding for the same online service, all
//! had access to short-term cache"*), and when the triggering query
//! completes the service reverts to its default class — unless another
//! still-outstanding query has also crossed its timeout.

use stca_cat::{AllocationSetting, ShortTermPolicy};
use stca_util::Seconds;
use std::collections::HashSet;

/// Boost bookkeeping for one service.
#[derive(Debug, Clone)]
pub struct ProxyService {
    policy: ShortTermPolicy,
    expected_service: Seconds,
    /// Outstanding queries that have crossed the timeout.
    triggered: HashSet<u64>,
    /// Total COS switches performed (each direction counts one).
    switches: u64,
    /// Whether the boosted setting is currently installed.
    boosted_installed: bool,
}

impl ProxyService {
    /// Create a proxy enforcing `policy` for a service whose expected
    /// service time is `expected_service`.
    pub fn new(policy: ShortTermPolicy, expected_service: Seconds) -> Self {
        assert!(expected_service > 0.0);
        ProxyService {
            policy,
            expected_service,
            triggered: HashSet::new(),
            switches: 0,
            boosted_installed: false,
        }
    }

    /// The policy being enforced.
    pub fn policy(&self) -> &ShortTermPolicy {
        &self.policy
    }

    /// Check one outstanding query against Eq. 4. Returns `true` if this
    /// call newly triggered the query (idempotent afterwards).
    pub fn check(&mut self, query_id: u64, arrival: Seconds, now: Seconds) -> bool {
        if self.triggered.contains(&query_id) {
            return false;
        }
        if self
            .policy
            .should_boost(now - arrival, self.expected_service)
        {
            self.triggered.insert(query_id);
            true
        } else {
            false
        }
    }

    /// Notify query completion (reply received by the proxy). Reverts the
    /// service class when no triggered query remains outstanding.
    pub fn complete(&mut self, query_id: u64) {
        self.triggered.remove(&query_id);
    }

    /// Whether the service should currently run with the boosted setting.
    pub fn boost_active(&self) -> bool {
        !self.triggered.is_empty()
    }

    /// The allocation setting that should be installed right now, updating
    /// the switch count when it changes. Call once per scheduling step.
    pub fn current_setting(&mut self) -> AllocationSetting {
        let want_boost = self.boost_active();
        if want_boost != self.boosted_installed {
            self.boosted_installed = want_boost;
            self.switches += 1;
        }
        if want_boost {
            self.policy.boosted
        } else {
            self.policy.default
        }
    }

    /// COS switches performed so far (MSR-write analogue; the paper keeps
    /// this low by boosting all outstanding queries at once).
    pub fn switch_count(&self) -> u64 {
        self.switches
    }

    /// Number of currently-triggered outstanding queries.
    pub fn triggered_count(&self) -> usize {
        self.triggered.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proxy(timeout_ratio: f64) -> ProxyService {
        let policy = ShortTermPolicy::new(
            AllocationSetting::new(0, 2),
            AllocationSetting::new(0, 4),
            timeout_ratio,
        );
        ProxyService::new(policy, 1.0)
    }

    #[test]
    fn triggers_at_timeout() {
        let mut p = proxy(1.5);
        assert!(!p.check(1, 0.0, 1.0));
        assert!(!p.boost_active());
        assert!(p.check(1, 0.0, 1.5));
        assert!(p.boost_active());
        // idempotent
        assert!(!p.check(1, 0.0, 2.0));
    }

    #[test]
    fn reverts_when_trigger_completes() {
        let mut p = proxy(1.0);
        p.check(1, 0.0, 1.0);
        assert_eq!(p.current_setting(), AllocationSetting::new(0, 4));
        p.complete(1);
        assert!(!p.boost_active());
        assert_eq!(p.current_setting(), AllocationSetting::new(0, 2));
        assert_eq!(p.switch_count(), 2, "one switch each direction");
    }

    #[test]
    fn stays_boosted_while_another_trigger_outstanding() {
        let mut p = proxy(1.0);
        p.check(1, 0.0, 1.0);
        p.check(2, 0.5, 2.0);
        p.complete(1);
        assert!(p.boost_active(), "query 2 still past its timeout");
        p.complete(2);
        assert!(!p.boost_active());
    }

    #[test]
    fn switch_count_ignores_steady_state() {
        let mut p = proxy(1.0);
        for _ in 0..10 {
            p.current_setting();
        }
        assert_eq!(p.switch_count(), 0);
        p.check(1, 0.0, 5.0);
        for _ in 0..10 {
            p.current_setting();
        }
        assert_eq!(p.switch_count(), 1);
    }

    #[test]
    fn static_policy_never_triggers() {
        let policy = ShortTermPolicy::static_only(AllocationSetting::new(0, 2));
        let mut p = ProxyService::new(policy, 1.0);
        assert!(!p.check(1, 0.0, 1e9));
        assert!(!p.boost_active());
    }
}
