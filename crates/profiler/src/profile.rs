//! Eq.-2 profile vectors and dataset assembly.
//!
//! One profiling run of one workload yields one profile row:
//!
//! ```text
//! P = < static, dynamic, query_trace (29 x T), effective allocation >
//! ```
//!
//! *static* — the controlled runtime condition (utilizations, timeouts,
//! sampling period); *dynamic* — observed queueing behaviour that cannot be
//! set directly (normalized queue delays); *query_trace* — the sampled
//! counter matrix; the label is measured effective cache allocation. The
//! row also carries auxiliary targets (normalized base service time and
//! response times) used by the Stage-3 conversion and by the direct-ML
//! baselines of Figure 6.

use crate::executor::WorkloadOutcome;
use crate::sampler::{trace_to_matrix, CounterOrdering};
use stca_util::{Matrix, Percentiles, Rng64};
use stca_workloads::RuntimeCondition;

/// One profiling observation (one workload under one runtime condition).
#[derive(Debug, Clone)]
pub struct ProfileRow {
    /// Static condition features (Eq. 2 `static` sub-vector).
    pub static_features: Vec<f64>,
    /// Dynamic condition features: mean and p95 queueing delay normalized
    /// by expected service time.
    pub dynamic_features: Vec<f64>,
    /// Sampled counter trace, kept unflattened so multi-grain scanning can
    /// window over it (29 rows x trace-length columns, log1p-scaled).
    pub trace: Matrix,
    /// Label: measured effective cache allocation (Eq. 3).
    pub ea: f64,
    /// Auxiliary target: mean default-allocation service time / expected.
    pub base_service_norm: f64,
    /// Auxiliary target: mean response time / expected service time.
    pub mean_response_norm: f64,
    /// Auxiliary target: p95 response time / expected service time.
    pub p95_response_norm: f64,
    /// Allocation ratio `l_a'/l_a` of the profiled policy.
    pub allocation_ratio: f64,
}

impl ProfileRow {
    /// Build a row from a finished experiment, for workload `index` of the
    /// condition.
    pub fn from_outcome(
        condition: &RuntimeCondition,
        index: usize,
        outcome: &WorkloadOutcome,
        ordering: CounterOrdering,
    ) -> ProfileRow {
        let es = outcome.expected_service;
        let mut qd = Percentiles::with_capacity(outcome.queue_delays.len());
        qd.extend_from(&outcome.queue_delays);
        let (mean_qd, p95_qd) = if qd.is_empty() {
            (0.0, 0.0)
        } else {
            (qd.mean(), qd.p95())
        };
        // the target workload's own condition leads the static vector so a
        // model trained across pairs sees a stable layout
        let wc = &condition.workloads[index];
        let other: Vec<f64> = condition
            .workloads
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != index)
            .flat_map(|(_, o)| [o.utilization, o.timeout_ratio])
            .collect();
        let mut static_features = vec![wc.utilization, wc.timeout_ratio];
        static_features.extend(other);
        static_features.push(condition.sample_period);
        ProfileRow {
            static_features,
            dynamic_features: vec![mean_qd / es, p95_qd / es],
            trace: trace_to_matrix(&outcome.trace, ordering),
            ea: outcome.effective_allocation,
            base_service_norm: outcome.base_service_estimate() / es,
            mean_response_norm: outcome.mean_response() / es,
            p95_response_norm: outcome.p95_response() / es,
            allocation_ratio: outcome.policy.allocation_ratio().max(1.0),
        }
    }

    /// Scalar model-input features. Only the *static* conditions are model
    /// inputs: the dynamic features (measured queueing delays) are Stage-3
    /// feedback/diagnostics — feeding a condition's own measured queue
    /// delay to a response-time model would leak most of the target, since
    /// response = queueing + service.
    pub fn scalar_features(&self) -> Vec<f64> {
        self.static_features.clone()
    }

    /// Fully flattened feature vector (scalars + row-major trace), the
    /// Eq.-2 "long 1xK vector".
    pub fn flat_features(&self) -> Vec<f64> {
        let mut f = self.scalar_features();
        f.extend_from_slice(self.trace.as_slice());
        f
    }
}

/// A set of profile rows with train/test utilities.
#[derive(Debug, Clone, Default)]
pub struct ProfileSet {
    /// The rows.
    pub rows: Vec<ProfileRow>,
}

impl ProfileSet {
    /// Empty set.
    pub fn new() -> Self {
        ProfileSet { rows: Vec::new() }
    }

    /// Add a row.
    pub fn push(&mut self, row: ProfileRow) {
        self.rows.push(row);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Flattened design matrix plus a chosen target.
    pub fn design_matrix(&self, target: Target) -> (Matrix, Vec<f64>) {
        assert!(!self.rows.is_empty());
        let mut x = Matrix::zeros(0, 0);
        let mut y = Vec::with_capacity(self.rows.len());
        for r in &self.rows {
            x.push_row(&r.flat_features());
            y.push(target.of(r));
        }
        (x, y)
    }

    /// Random split into (train, test) with `train_fraction` of rows in the
    /// training set. The paper trains on 33% and tests on 66% for its own
    /// model, 70/30 for competitors.
    pub fn split(&self, train_fraction: f64, rng: &mut Rng64) -> (ProfileSet, ProfileSet) {
        assert!((0.0..=1.0).contains(&train_fraction));
        let n = self.rows.len();
        let n_train = ((n as f64) * train_fraction).round() as usize;
        let mut idx: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut idx);
        let mut train = ProfileSet::new();
        let mut test = ProfileSet::new();
        for (i, &r) in idx.iter().enumerate() {
            if i < n_train {
                train.push(self.rows[r].clone());
            } else {
                test.push(self.rows[r].clone());
            }
        }
        (train, test)
    }
}

/// Which label a design matrix should carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Effective cache allocation (the paper's intermediate metric).
    Ea,
    /// Normalized base (unboosted) service time.
    BaseService,
    /// Normalized mean response time (direct-mapping baselines).
    MeanResponse,
    /// Normalized p95 response time.
    P95Response,
}

impl Target {
    /// Extract the target value from a row.
    pub fn of(&self, r: &ProfileRow) -> f64 {
        match self {
            Target::Ea => r.ea,
            Target::BaseService => r.base_service_norm,
            Target::MeanResponse => r.mean_response_norm,
            Target::P95Response => r.p95_response_norm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{ExperimentSpec, TestEnvironment};
    use stca_workloads::BenchmarkId;

    fn tiny_outcome() -> (RuntimeCondition, crate::executor::ExperimentOutcome) {
        let cond = RuntimeCondition::pair(BenchmarkId::Knn, 0.6, 1.0, BenchmarkId::Bfs, 0.7, 2.0);
        let out = TestEnvironment::new(ExperimentSpec::quick(cond.clone(), 11)).run();
        (cond, out)
    }

    #[test]
    fn row_layout_is_stable() {
        let (cond, out) = tiny_outcome();
        let r0 = ProfileRow::from_outcome(&cond, 0, &out.workloads[0], CounterOrdering::Grouped);
        let r1 = ProfileRow::from_outcome(&cond, 1, &out.workloads[1], CounterOrdering::Grouped);
        // target's own util/timeout first
        assert_eq!(&r0.static_features[..2], &[0.6, 1.0]);
        assert_eq!(&r1.static_features[..2], &[0.7, 2.0]);
        // collocated partner's next
        assert_eq!(&r0.static_features[2..4], &[0.7, 2.0]);
        assert_eq!(r0.dynamic_features.len(), 2);
        assert_eq!(r0.trace.rows(), 29);
        assert_eq!(r0.trace.cols(), 20);
        assert!(r0.ea > 0.0);
        assert!(r0.mean_response_norm > 0.0);
    }

    #[test]
    fn flat_features_length() {
        let (cond, out) = tiny_outcome();
        let r = ProfileRow::from_outcome(&cond, 0, &out.workloads[0], CounterOrdering::Grouped);
        assert_eq!(r.flat_features().len(), 5 + 29 * 20);
        // dynamic features exist as diagnostics but are not model inputs
        assert_eq!(r.dynamic_features.len(), 2);
        assert_eq!(r.scalar_features().len(), 5);
    }

    #[test]
    fn design_matrix_and_targets() {
        let (cond, out) = tiny_outcome();
        let mut set = ProfileSet::new();
        for (i, w) in out.workloads.iter().enumerate() {
            set.push(ProfileRow::from_outcome(
                &cond,
                i,
                w,
                CounterOrdering::Grouped,
            ));
        }
        let (x, y) = set.design_matrix(Target::Ea);
        assert_eq!(x.rows(), 2);
        assert_eq!(y.len(), 2);
        let (_, y2) = set.design_matrix(Target::MeanResponse);
        assert_ne!(y, y2);
    }

    #[test]
    fn split_partitions_rows() {
        let (cond, out) = tiny_outcome();
        let mut set = ProfileSet::new();
        for _ in 0..5 {
            for (i, w) in out.workloads.iter().enumerate() {
                set.push(ProfileRow::from_outcome(
                    &cond,
                    i,
                    w,
                    CounterOrdering::Grouped,
                ));
            }
        }
        let mut rng = Rng64::new(1);
        let (train, test) = set.split(0.33, &mut rng);
        assert_eq!(train.len() + test.len(), 10);
        assert_eq!(train.len(), 3);
    }
}
