//! Stratified condition sampling (§4).
//!
//! Uniform random sampling over-samples some regions of the condition space.
//! The paper's procedure: randomly select *seed* settings, execute them,
//! cluster the results by effective cache allocation, and generate new
//! settings near each cluster's centroid setting — repeatedly refining the
//! centroids. The paper reports this cut profiling time by 67% at equal
//! accuracy.
//!
//! The sampler is generic over the (expensive) evaluation: callers pass a
//! closure running one profiling experiment and returning measured EA, so
//! tests can exercise the sampling logic against synthetic surfaces.

use stca_fault::StcaError;
use stca_util::kmeans::kmeans;
use stca_util::Rng64;
use stca_workloads::conditions::bounds;
use stca_workloads::{BenchmarkId, RuntimeCondition};

/// Record one evaluated condition in the global registry: which sampling
/// phase produced it and the measured EA, whose distribution
/// (`profiler.sampling.ea`) is the stratifier's clustering signal.
fn record_sample(phase_counter: &str, ea: f64) {
    stca_obs::counter("profiler.samples_total").inc();
    stca_obs::counter(phase_counter).inc();
    stca_obs::histogram("profiler.sampling.ea").record(ea);
}

/// Configuration for the stratified sampler.
#[derive(Debug, Clone, Copy)]
pub struct StratifiedConfig {
    /// Random seed experiments executed first.
    pub seeds: usize,
    /// Clusters formed over seed EAs.
    pub clusters: usize,
    /// Refinement settings generated near each centroid per round.
    pub per_cluster: usize,
    /// Refinement rounds.
    pub rounds: usize,
    /// Relative jitter applied to centroid settings when generating
    /// neighbours (fraction of each dimension's range).
    pub jitter: f64,
}

impl Default for StratifiedConfig {
    fn default() -> Self {
        StratifiedConfig {
            seeds: 12,
            clusters: 4,
            per_cluster: 3,
            rounds: 2,
            jitter: 0.12,
        }
    }
}

/// One evaluated condition, optionally carrying whatever extra data the
/// evaluator produced alongside the EA (e.g. dataset rows).
#[derive(Debug, Clone)]
pub struct EvaluatedCondition<T = ()> {
    /// The condition that was run.
    pub condition: RuntimeCondition,
    /// Measured effective allocation of the target workload.
    pub ea: f64,
    /// Evaluator payload (`()` when only the EA matters).
    pub payload: T,
}

fn jittered_near(c: &RuntimeCondition, jitter: f64, rng: &mut Rng64) -> RuntimeCondition {
    let mut out = c.clone();
    for w in &mut out.workloads {
        let du = (bounds::MAX_UTIL - bounds::MIN_UTIL) * jitter;
        let dt = (bounds::MAX_TIMEOUT - bounds::MIN_TIMEOUT) * jitter;
        w.utilization =
            (w.utilization + rng.next_range(-du, du)).clamp(bounds::MIN_UTIL, bounds::MAX_UTIL);
        w.timeout_ratio = (w.timeout_ratio + rng.next_range(-dt, dt))
            .clamp(bounds::MIN_TIMEOUT, bounds::MAX_TIMEOUT);
    }
    out
}

/// Run the stratified sampling procedure for a collocation pair. The
/// returned list contains every evaluated condition (seeds + refinements),
/// which becomes the profiling dataset.
///
/// Thin wrapper over [`stratified_sample_with`] for evaluators that only
/// return the measured EA.
pub fn stratified_sample(
    pair: (BenchmarkId, BenchmarkId),
    config: StratifiedConfig,
    rng: &mut Rng64,
    evaluate: impl Fn(&RuntimeCondition) -> f64 + Sync,
) -> Vec<EvaluatedCondition> {
    stratified_sample_with(pair, config, rng, |c| (evaluate(c), ()))
}

/// Stratified sampling with an evaluator that returns `(ea, payload)`.
///
/// Conditions are drawn serially from `rng` (the procedure is inherently
/// sequential: each round clusters everything evaluated so far), but each
/// batch of drawn conditions is *evaluated* in parallel. The evaluator must
/// therefore be `Fn + Sync`; any internal randomness should be derived from
/// the condition itself or a per-condition seed, not shared mutable state.
/// Results are returned in draw order at any thread count.
pub fn stratified_sample_with<T: Send>(
    pair: (BenchmarkId, BenchmarkId),
    config: StratifiedConfig,
    rng: &mut Rng64,
    evaluate: impl Fn(&RuntimeCondition) -> (f64, T) + Sync,
) -> Vec<EvaluatedCondition<T>> {
    assert!(
        config.seeds >= config.clusters,
        "need at least one seed per cluster"
    );
    stca_obs::time_scope!("profiler.stratified.run_seconds");
    stca_obs::debug!(
        "stratified sampling {}({}): {} seeds, {} clusters x {} x {} rounds",
        pair.0,
        pair.1,
        config.seeds,
        config.clusters,
        config.per_cluster,
        config.rounds
    );
    let eval_batch =
        |conditions: Vec<RuntimeCondition>, phase_counter: &str| -> Vec<EvaluatedCondition<T>> {
            let results = stca_exec::par_map_indexed(&conditions, |_, c| evaluate(c));
            conditions
                .into_iter()
                .zip(results)
                .map(|(condition, (ea, payload))| {
                    record_sample(phase_counter, ea);
                    EvaluatedCondition {
                        condition,
                        ea,
                        payload,
                    }
                })
                .collect()
        };

    // seed phase
    let seeds: Vec<RuntimeCondition> = (0..config.seeds)
        .map(|_| RuntimeCondition::random_pair(pair.0, pair.1, rng))
        .collect();
    let mut evaluated = eval_batch(seeds, "profiler.stratified.seed_samples_total");

    for _ in 0..config.rounds {
        // cluster by EA (1-D)
        let points: Vec<Vec<f64>> = evaluated.iter().map(|e| vec![e.ea]).collect();
        let km = kmeans(&points, config.clusters, 50, rng);
        // per cluster: find the member closest to the centroid and generate
        // neighbours around its *condition* (settings near the centroid
        // setting, per §4). The whole round's neighbours are drawn first,
        // then evaluated as one parallel batch and appended after the
        // cluster loop so cluster assignments stay index-aligned.
        let mut staged: Vec<RuntimeCondition> = Vec::new();
        for c in 0..km.centroids.len() {
            let centroid_ea = km.centroids[c][0];
            let representative = evaluated
                .iter()
                .enumerate()
                .filter(|(i, _)| km.assignment[*i] == c)
                .min_by(|(_, a), (_, b)| {
                    (a.ea - centroid_ea)
                        .abs()
                        .partial_cmp(&(b.ea - centroid_ea).abs())
                        .expect("finite EA")
                })
                .map(|(_, e)| e.condition.clone());
            let Some(rep) = representative else { continue };
            for _ in 0..config.per_cluster {
                staged.push(jittered_near(&rep, config.jitter, rng));
            }
        }
        evaluated.extend(eval_batch(
            staged,
            "profiler.stratified.refine_samples_total",
        ));
    }
    stca_obs::debug!(
        "stratified sampling done: {} conditions evaluated",
        evaluated.len()
    );
    evaluated
}

/// Fault-tolerant stratified sampling.
///
/// Like [`stratified_sample_with`], but the evaluator is fallible and may
/// panic: conditions whose evaluation fails (or panics — isolated via the
/// exec pool's catch-unwind path) are *skipped* with a warning and counted
/// in `fault.conditions_failed_total`, and clustering proceeds over the
/// survivors. The evaluator also receives the condition's global draw index
/// so per-condition seeds can be derived deterministically.
///
/// Errors only when the procedure cannot continue: fewer seeds than
/// clusters requested, or every seed condition failed.
pub fn stratified_sample_checked<T: Send>(
    pair: (BenchmarkId, BenchmarkId),
    config: StratifiedConfig,
    rng: &mut Rng64,
    evaluate: impl Fn(usize, &RuntimeCondition) -> Result<(f64, T), StcaError> + Sync,
) -> Result<Vec<EvaluatedCondition<T>>, StcaError> {
    if config.seeds < config.clusters {
        return Err(StcaError::invalid_input(format!(
            "need at least one seed per cluster: {} seeds, {} clusters",
            config.seeds, config.clusters
        )));
    }
    stca_obs::time_scope!("profiler.stratified.run_seconds");
    let failed = stca_obs::counter("fault.conditions_failed_total");
    // `drawn` is the global draw index offset for the current batch, so the
    // evaluator sees a stable per-condition index regardless of how many
    // earlier conditions failed.
    let mut drawn = 0usize;
    let mut eval_batch = |conditions: Vec<RuntimeCondition>,
                          phase_counter: &str|
     -> Vec<EvaluatedCondition<T>> {
        let base = drawn;
        drawn += conditions.len();
        let results = stca_exec::par_map_indexed_caught(&conditions, |i, c| evaluate(base + i, c));
        conditions
            .into_iter()
            .zip(results)
            .enumerate()
            .filter_map(|(i, (condition, result))| {
                let flattened = match result {
                    Ok(inner) => inner.map_err(|e| e.to_string()),
                    Err(panic_msg) => Err(format!("panicked: {panic_msg}")),
                };
                match flattened {
                    Ok((ea, payload)) => {
                        record_sample(phase_counter, ea);
                        Some(EvaluatedCondition {
                            condition,
                            ea,
                            payload,
                        })
                    }
                    Err(reason) => {
                        failed.inc();
                        stca_obs::warn!(
                            "stratified: condition {} failed, skipping: {reason}",
                            base + i
                        );
                        None
                    }
                }
            })
            .collect()
    };

    let seeds: Vec<RuntimeCondition> = (0..config.seeds)
        .map(|_| RuntimeCondition::random_pair(pair.0, pair.1, rng))
        .collect();
    let mut evaluated = eval_batch(seeds, "profiler.stratified.seed_samples_total");
    if evaluated.is_empty() {
        return Err(StcaError::invalid_input(format!(
            "all {} seed conditions failed to evaluate",
            config.seeds
        )));
    }

    for _ in 0..config.rounds {
        let points: Vec<Vec<f64>> = evaluated.iter().map(|e| vec![e.ea]).collect();
        // survivors may number fewer than the requested clusters
        let k = config.clusters.min(points.len());
        let km = kmeans(&points, k, 50, rng);
        let mut staged: Vec<RuntimeCondition> = Vec::new();
        for c in 0..km.centroids.len() {
            let centroid_ea = km.centroids[c][0];
            let representative = evaluated
                .iter()
                .enumerate()
                .filter(|(i, _)| km.assignment[*i] == c)
                .min_by(|(_, a), (_, b)| {
                    (a.ea - centroid_ea)
                        .abs()
                        .partial_cmp(&(b.ea - centroid_ea).abs())
                        .expect("finite EA")
                })
                .map(|(_, e)| e.condition.clone());
            let Some(rep) = representative else { continue };
            for _ in 0..config.per_cluster {
                staged.push(jittered_near(&rep, config.jitter, rng));
            }
        }
        let refined = eval_batch(staged, "profiler.stratified.refine_samples_total");
        evaluated.extend(refined);
    }
    stca_obs::debug!(
        "stratified (checked) done: {} of {} drawn conditions evaluated",
        evaluated.len(),
        drawn
    );
    Ok(evaluated)
}

/// Plain uniform sampling of `n` conditions (the comparison point the paper
/// abandoned for over-sampling). Conditions are drawn serially, evaluated
/// in parallel, and returned in draw order.
pub fn uniform_sample(
    pair: (BenchmarkId, BenchmarkId),
    n: usize,
    rng: &mut Rng64,
    evaluate: impl Fn(&RuntimeCondition) -> f64 + Sync,
) -> Vec<EvaluatedCondition> {
    let conditions: Vec<RuntimeCondition> = (0..n)
        .map(|_| RuntimeCondition::random_pair(pair.0, pair.1, rng))
        .collect();
    let eas = stca_exec::par_map_indexed(&conditions, |_, c| evaluate(c));
    conditions
        .into_iter()
        .zip(eas)
        .map(|(condition, ea)| {
            record_sample("profiler.uniform.samples_total", ea);
            EvaluatedCondition {
                condition,
                ea,
                payload: (),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic EA surface: EA depends sharply on the target's timeout
    /// (cliff at 1.0) and mildly on utilization.
    fn surface(c: &RuntimeCondition) -> f64 {
        let w = &c.workloads[0];
        let cliff = if w.timeout_ratio < 1.0 { 0.3 } else { 0.8 };
        cliff + 0.1 * w.utilization
    }

    #[test]
    fn produces_expected_count() {
        let mut rng = Rng64::new(1);
        let cfg = StratifiedConfig {
            seeds: 10,
            clusters: 3,
            per_cluster: 2,
            rounds: 2,
            jitter: 0.1,
        };
        let out = stratified_sample(
            (BenchmarkId::Redis, BenchmarkId::Social),
            cfg,
            &mut rng,
            surface,
        );
        // 10 seeds + 2 rounds x 3 clusters x 2 = 22
        assert_eq!(out.len(), 22);
        assert!(out.iter().all(|e| e.condition.in_bounds()));
    }

    #[test]
    fn refinements_concentrate_near_cluster_representatives() {
        let mut rng = Rng64::new(2);
        let cfg = StratifiedConfig {
            seeds: 16,
            clusters: 2,
            per_cluster: 8,
            rounds: 1,
            jitter: 0.05,
        };
        let out = stratified_sample((BenchmarkId::Knn, BenchmarkId::Bfs), cfg, &mut rng, surface);
        let refinements = &out[16..];
        // both sides of the EA cliff get refined (low-EA and high-EA regions)
        let low = refinements.iter().filter(|e| e.ea < 0.5).count();
        let high = refinements.iter().filter(|e| e.ea >= 0.5).count();
        assert!(
            low > 0 && high > 0,
            "both strata sampled: low={low} high={high}"
        );
    }

    #[test]
    fn uniform_sampling_covers_space() {
        let mut rng = Rng64::new(3);
        let out = uniform_sample((BenchmarkId::Knn, BenchmarkId::Bfs), 50, &mut rng, surface);
        assert_eq!(out.len(), 50);
        let utils: Vec<f64> = out
            .iter()
            .map(|e| e.condition.workloads[0].utilization)
            .collect();
        let min = utils.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = utils.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min < 0.4 && max > 0.8, "uniform spread: {min}..{max}");
    }

    #[test]
    fn evaluation_called_once_per_condition() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut rng = Rng64::new(4);
        let calls = AtomicUsize::new(0);
        let cfg = StratifiedConfig::default();
        let out = stratified_sample(
            (BenchmarkId::Jacobi, BenchmarkId::Spstream),
            cfg,
            &mut rng,
            |c| {
                calls.fetch_add(1, Ordering::Relaxed);
                surface(c)
            },
        );
        assert_eq!(calls.load(Ordering::Relaxed), out.len());
    }

    #[test]
    fn checked_sampler_skips_failed_conditions() {
        let mut rng = Rng64::new(6);
        let cfg = StratifiedConfig {
            seeds: 10,
            clusters: 3,
            per_cluster: 2,
            rounds: 1,
            jitter: 0.1,
        };
        let out = stratified_sample_checked(
            (BenchmarkId::Knn, BenchmarkId::Bfs),
            cfg,
            &mut rng,
            |i, c| {
                if i % 3 == 0 {
                    Err(StcaError::InjectedCrash {
                        run_key: i as u64,
                        attempt: 0,
                    })
                } else {
                    Ok((surface(c), ()))
                }
            },
        )
        .expect("survivors remain");
        // 10 seeds + 3x2 refinements drawn = 16, every 3rd fails
        assert!(!out.is_empty());
        assert!(out.len() < 16, "failed conditions are dropped");
        assert!(out.iter().all(|e| e.ea.is_finite()));
    }

    #[test]
    fn checked_sampler_isolates_panics() {
        let mut rng = Rng64::new(7);
        let cfg = StratifiedConfig {
            seeds: 6,
            clusters: 2,
            per_cluster: 1,
            rounds: 1,
            jitter: 0.1,
        };
        let out = stratified_sample_checked(
            (BenchmarkId::Knn, BenchmarkId::Bfs),
            cfg,
            &mut rng,
            |i, c| {
                if i == 2 {
                    panic!("synthetic evaluator panic");
                }
                Ok((surface(c), ()))
            },
        )
        .expect("panics are contained");
        assert!(!out.is_empty());
    }

    #[test]
    fn checked_sampler_errors_when_everything_fails() {
        let mut rng = Rng64::new(8);
        let cfg = StratifiedConfig {
            seeds: 4,
            clusters: 2,
            per_cluster: 1,
            rounds: 1,
            jitter: 0.1,
        };
        let err = stratified_sample_checked::<()>(
            (BenchmarkId::Knn, BenchmarkId::Bfs),
            cfg,
            &mut rng,
            |i, _| {
                Err(StcaError::InjectedCrash {
                    run_key: i as u64,
                    attempt: 0,
                })
            },
        )
        .expect_err("no survivors");
        assert!(matches!(err, StcaError::InvalidInput { .. }));
    }

    #[test]
    fn checked_sampler_rejects_bad_config() {
        let mut rng = Rng64::new(9);
        let cfg = StratifiedConfig {
            seeds: 2,
            clusters: 5,
            per_cluster: 1,
            rounds: 1,
            jitter: 0.1,
        };
        assert!(matches!(
            stratified_sample_checked(
                (BenchmarkId::Knn, BenchmarkId::Bfs),
                cfg,
                &mut rng,
                |_, c| Ok((surface(c), ())),
            ),
            Err(StcaError::InvalidInput { .. })
        ));
    }

    #[test]
    fn payload_rides_along_in_draw_order() {
        let mut rng = Rng64::new(5);
        let cfg = StratifiedConfig {
            seeds: 8,
            clusters: 2,
            per_cluster: 2,
            rounds: 1,
            jitter: 0.1,
        };
        let out =
            stratified_sample_with((BenchmarkId::Knn, BenchmarkId::Bfs), cfg, &mut rng, |c| {
                let ea = surface(c);
                (ea, format!("{ea:.6}"))
            });
        assert_eq!(out.len(), 8 + 2 * 2);
        for e in &out {
            assert_eq!(e.payload, format!("{:.6}", e.ea), "payload matches its row");
        }
    }
}
