//! # stca-profiler
//!
//! The paper's Stage-1 profiling system and the "test environment" it runs
//! in (§3.1, §4). This crate is the **ground truth** of the reproduction:
//! collocated benchmark models execute real address streams through the
//! shared `stca-cachesim` hierarchy under CAT masks, with the proxy-service
//! timeout machinery switching classes of service exactly as the paper's
//! implementation does. Everything the modeling layers see — counter traces,
//! response times, effective cache allocation — is *measured* from these
//! runs, never scripted.
//!
//! Components:
//!
//! * [`executor`] — the collocated test environment: open-loop arrivals,
//!   2-server stations per workload, quantum-interleaved execution over the
//!   shared cache, timeout-triggered COS switches, per-query response
//!   times;
//! * [`proxy`] — the proxy service that monitors outstanding queries and
//!   flips allocation settings (switch on timeout, revert on completion of
//!   the triggering query);
//! * [`ea`] — effective cache allocation (Eq. 3);
//! * [`sampler`] — counter-trace sampling at Table-2 rates, zero-padding,
//!   and the grouped/shuffled counter orderings of Figure 7c;
//! * [`profile`] — Eq.-2 profile vectors and train/test dataset assembly;
//! * [`stratified`] — the stratified condition-sampling procedure of §4
//!   (seed experiments → cluster by EA → refine near centroids).
//!
//! The profiler is the first stage of the fault-tolerant path (`stca-fault`):
//! [`executor::run_experiment_checked`] runs experiments under a
//! [`stca_fault::FaultPlan`] with retry, [`sampler::sanitize_trace`] repairs
//! or rejects damaged traces, and [`stratified::stratified_sample_checked`]
//! skips failed conditions instead of aborting the sweep.

#![warn(clippy::unwrap_used)]

pub mod ea;
pub mod executor;
pub mod profile;
pub mod proxy;
pub mod sampler;
pub mod storage;
pub mod stratified;

pub use ea::effective_allocation;
pub use executor::{
    run_experiment_checked, ExperimentOutcome, ExperimentSpec, TestEnvironment, WorkloadOutcome,
};
pub use profile::{ProfileRow, ProfileSet};
pub use proxy::ProxyService;
pub use sampler::{apply_faults, sanitize_trace, TraceSanitizeReport};
pub use stratified::{stratified_sample_checked, EvaluatedCondition};
