//! Counter-trace post-processing: matrix form, feature ordering, scaling —
//! and, for fault-injected runs, trace mangling and sanitization.
//!
//! A sampled run yields `trace_len` counter snapshots; multi-grain scanning
//! consumes them as a 29 x T matrix. Figure 7c shows the *ordering* of the
//! 29 counter rows matters: grouping correlated counters (all L1d together,
//! all LLC together) lets convolution windows capture correlated events,
//! while a shuffled ordering destroys that spatial locality. Both orderings
//! are provided so the ablation can be reproduced.
//!
//! [`apply_faults`] realizes a [`stca_fault::FaultInjector`]'s per-sample
//! decisions on a trace (dropout, corruption, stuck sensors, noise);
//! [`sanitize_trace`] is the defence that runs before [`trace_to_matrix`]:
//! implausible counter values and stuck runs are quarantined (zeroed, like
//! the padding convention for missing samples) or, past a damage threshold,
//! the whole trace is rejected.

use stca_cachesim::{Counter, CounterSet, COUNTER_COUNT};
use stca_fault::sanitize::COUNTER_PLAUSIBLE_MAX;
use stca_fault::{FaultInjector, SampleFault};
use stca_util::{Matrix, Rng64};

/// How counter rows are ordered in the trace matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterOrdering {
    /// Canonical grouped order (correlated counters adjacent).
    Grouped,
    /// Deterministically shuffled with the given seed (destroys locality).
    Shuffled(u64),
}

/// Permutation of the 29 counters for an ordering. `perm[i]` is the counter
/// index placed at row `i`.
pub fn ordering_permutation(ordering: CounterOrdering) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..COUNTER_COUNT).collect();
    if let CounterOrdering::Shuffled(seed) = ordering {
        let mut rng = Rng64::new(seed);
        rng.shuffle(&mut perm);
    }
    perm
}

/// Convert a sampled trace to a `29 x T` matrix under the given ordering,
/// with `log1p` scaling (counter magnitudes span 6 orders of magnitude;
/// trees are scale-free per split but windowed kernels mix features, and the
/// compression keeps any single counter from dominating a window).
pub fn trace_to_matrix(trace: &[CounterSet], ordering: CounterOrdering) -> Matrix {
    stca_obs::counter("profiler.sampler.traces_converted_total").inc();
    let perm = ordering_permutation(ordering);
    let t = trace.len();
    let mut m = Matrix::zeros(COUNTER_COUNT, t);
    for (col, snap) in trace.iter().enumerate() {
        let feats = snap.to_features();
        for (row, &src) in perm.iter().enumerate() {
            m[(row, col)] = feats[src].ln_1p();
        }
    }
    m
}

/// Flatten a trace matrix row-major (the Eq.-2 "long 1xK vector" layout).
pub fn flatten(m: &Matrix) -> Vec<f64> {
    m.as_slice().to_vec()
}

/// Realize an injector's per-sample fault decisions on a sampled trace.
///
/// `station` keys the tag space so collocated workloads of one run draw
/// independent faults; the per-sample tag is `(station << 32) | index`, a
/// pure function of position — bit-deterministic at any thread count.
/// All-zero rows (the padding convention) are left untouched.
pub fn apply_faults(injector: &FaultInjector, station: u64, trace: &mut [CounterSet]) {
    if !injector.is_active() {
        return;
    }
    let zero = CounterSet::new();
    for i in 0..trace.len() {
        if trace[i] == zero {
            continue;
        }
        let tag = (station << 32) | i as u64;
        match injector.sample_fault(tag) {
            SampleFault::Drop => trace[i] = zero,
            SampleFault::Corrupt => {
                let garbage = injector.corrupt_row(tag, COUNTER_COUNT);
                for (c, v) in Counter::ALL.iter().zip(garbage) {
                    trace[i].set(*c, v);
                }
            }
            // index 0 has no previous row to get stuck on: the sensor
            // reports nothing, which is a drop
            SampleFault::Stuck => trace[i] = if i > 0 { trace[i - 1] } else { zero },
            SampleFault::None => {
                let factors = injector.noise_factors(tag, COUNTER_COUNT);
                if factors.iter().any(|&f| f != 1.0) {
                    for (c, f) in Counter::ALL.iter().zip(factors) {
                        let noisy = (trace[i].get(*c) as f64 * f).round().max(0.0) as u64;
                        trace[i].set(*c, noisy);
                    }
                }
            }
        }
    }
}

/// What [`sanitize_trace`] found and repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSanitizeReport {
    /// Rows quarantined for implausible counter values.
    pub corrupt: usize,
    /// Rows quarantined as stuck-sensor repeats.
    pub stuck: usize,
    /// Non-zero rows before sanitization (padding excluded).
    pub informative: usize,
    /// Total rows in the trace.
    pub total: usize,
}

impl TraceSanitizeReport {
    /// Rows zeroed by sanitization.
    pub fn repaired(&self) -> usize {
        self.corrupt + self.stuck
    }

    /// Whether the trace is too damaged to train on: more than half of its
    /// informative rows had to be quarantined.
    pub fn rejected(&self) -> bool {
        self.repaired() * 2 > self.informative
    }
}

impl std::fmt::Display for TraceSanitizeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} informative samples damaged (corrupt {}, stuck {})",
            self.repaired(),
            self.informative,
            self.corrupt,
            self.stuck
        )
    }
}

/// Sanitize a sampled trace in place before it becomes model input.
///
/// Two defects are quarantined by zeroing the row (the same convention as
/// padding, which downstream layers already treat as "no information"):
/// counter values above [`COUNTER_PLAUSIBLE_MAX`], and rows identical to
/// the previous *non-zero* row (a stuck sensor; genuinely identical
/// consecutive windows across all 29 live counters do not occur). Callers
/// should reject the trace when [`TraceSanitizeReport::rejected`] is set.
pub fn sanitize_trace(trace: &mut [CounterSet]) -> TraceSanitizeReport {
    let zero = CounterSet::new();
    let informative = trace.iter().filter(|s| **s != zero).count();
    let is_corrupt = |s: &CounterSet| {
        s.to_features()
            .iter()
            .any(|&v| v >= COUNTER_PLAUSIBLE_MAX as f64)
    };
    let mut quarantine = vec![false; trace.len()];
    let mut corrupt = 0usize;
    let mut stuck = 0usize;
    // Stuck detection compares against the *original* previous row, so a
    // run of N repeats quarantines all N-1 copies even as rows are zeroed.
    for i in 0..trace.len() {
        if trace[i] == zero {
            continue;
        }
        if is_corrupt(&trace[i]) {
            quarantine[i] = true;
            corrupt += 1;
        } else if i > 0 && trace[i] == trace[i - 1] {
            quarantine[i] = true;
            stuck += 1;
        }
    }
    for (row, q) in trace.iter_mut().zip(&quarantine) {
        if *q {
            // quarantined rows become zero rows — same as padding, which
            // downstream layers already treat as "no information"
            *row = zero;
        }
    }
    let report = TraceSanitizeReport {
        corrupt,
        stuck,
        informative,
        total: trace.len(),
    };
    if report.repaired() > 0 {
        stca_obs::counter("fault.samples_quarantined_total").add(report.repaired() as u64);
    }
    if report.rejected() {
        stca_obs::counter("fault.traces_rejected_total").inc();
    }
    report
}

/// Human-readable row labels for a given ordering (diagnostics/examples).
pub fn row_labels(ordering: CounterOrdering) -> Vec<&'static str> {
    ordering_permutation(ordering)
        .into_iter()
        .map(|i| Counter::ALL[i].name())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Vec<CounterSet> {
        (0..5)
            .map(|i| {
                let mut c = CounterSet::new();
                c.add(Counter::LlcMisses, 10 * (i + 1));
                c.add(Counter::L1dLoads, 1000);
                c
            })
            .collect()
    }

    #[test]
    fn grouped_is_identity_permutation() {
        assert_eq!(
            ordering_permutation(CounterOrdering::Grouped),
            (0..COUNTER_COUNT).collect::<Vec<_>>()
        );
    }

    #[test]
    fn shuffled_is_a_permutation_and_deterministic() {
        let a = ordering_permutation(CounterOrdering::Shuffled(7));
        let b = ordering_permutation(CounterOrdering::Shuffled(7));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..COUNTER_COUNT).collect::<Vec<_>>());
        assert_ne!(a, ordering_permutation(CounterOrdering::Grouped));
    }

    #[test]
    fn matrix_shape_and_scaling() {
        let m = trace_to_matrix(&sample_trace(), CounterOrdering::Grouped);
        assert_eq!(m.rows(), COUNTER_COUNT);
        assert_eq!(m.cols(), 5);
        // LlcMisses row: ln(1+10), ln(1+20), ...
        let row = Counter::LlcMisses as usize;
        assert!((m[(row, 0)] - (11f64).ln()).abs() < 1e-12);
        assert!(m[(row, 4)] > m[(row, 0)]);
    }

    #[test]
    fn shuffled_matrix_holds_same_values_in_different_rows() {
        let g = trace_to_matrix(&sample_trace(), CounterOrdering::Grouped);
        let s = trace_to_matrix(&sample_trace(), CounterOrdering::Shuffled(3));
        let perm = ordering_permutation(CounterOrdering::Shuffled(3));
        for (row, &src) in perm.iter().enumerate() {
            assert_eq!(s.row(row), g.row(src));
        }
    }

    #[test]
    fn flatten_length() {
        let m = trace_to_matrix(&sample_trace(), CounterOrdering::Grouped);
        assert_eq!(flatten(&m).len(), COUNTER_COUNT * 5);
    }

    #[test]
    fn labels_follow_permutation() {
        let labels = row_labels(CounterOrdering::Grouped);
        assert_eq!(labels[0], "inst_retired");
        assert_eq!(labels.len(), COUNTER_COUNT);
        let shuffled = row_labels(CounterOrdering::Shuffled(3));
        let perm = ordering_permutation(CounterOrdering::Shuffled(3));
        for (i, &src) in perm.iter().enumerate() {
            assert_eq!(shuffled[i], Counter::ALL[src].name());
        }
    }

    #[test]
    fn empty_trace_produces_empty_matrix() {
        let m = trace_to_matrix(&[], CounterOrdering::Grouped);
        assert_eq!(m.rows(), COUNTER_COUNT);
        assert_eq!(m.cols(), 0);
    }

    fn busy_trace(n: usize) -> Vec<CounterSet> {
        (0..n)
            .map(|i| {
                let mut c = CounterSet::new();
                c.add(Counter::LlcAccesses, 500 + 13 * i as u64);
                c.add(Counter::Cycles, 9_000 + 7 * i as u64);
                c
            })
            .collect()
    }

    #[test]
    fn apply_faults_is_deterministic_and_detectable() {
        let plan = stca_fault::FaultPlan::parse("dropout=0.3,corrupt=0.2,stuck=0.1,seed=11")
            .expect("plan");
        let inj = plan.injector(42, 0);
        let mut a = busy_trace(64);
        let mut b = busy_trace(64);
        apply_faults(&inj, 1, &mut a);
        apply_faults(&inj, 1, &mut b);
        assert_eq!(a, b, "same injector, same mangling");
        let mut other_station = busy_trace(64);
        apply_faults(&inj, 2, &mut other_station);
        assert_ne!(a, other_station, "stations draw independent faults");
        let zero = CounterSet::new();
        assert!(a.contains(&zero), "some rows dropped");
        assert!(
            a.iter()
                .any(|s| s.get(Counter::Cycles) >= COUNTER_PLAUSIBLE_MAX),
            "some rows corrupted"
        );
    }

    #[test]
    fn sanitize_quarantines_corrupt_and_stuck_rows() {
        let mut trace = busy_trace(10);
        trace[3].set(Counter::LlcMisses, COUNTER_PLAUSIBLE_MAX * 8);
        trace[6] = trace[5]; // stuck sensor
        trace[7] = trace[5]; // still stuck
        let report = sanitize_trace(&mut trace);
        assert_eq!(report.corrupt, 1);
        assert_eq!(report.stuck, 2);
        assert_eq!(report.informative, 10);
        assert!(!report.rejected());
        let zero = CounterSet::new();
        assert_eq!(trace[3], zero);
        assert_eq!(trace[6], zero);
        assert_eq!(trace[7], zero);
        assert_ne!(trace[5], zero, "the first of a stuck run is kept");
    }

    #[test]
    fn sanitize_leaves_clean_traces_alone() {
        let mut trace = busy_trace(8);
        // zero padding rows must not be flagged as stuck repeats
        trace.push(CounterSet::new());
        trace.push(CounterSet::new());
        let before = trace.clone();
        let report = sanitize_trace(&mut trace);
        assert_eq!(report.repaired(), 0);
        assert_eq!(report.informative, 8);
        assert_eq!(trace, before);
    }

    #[test]
    fn sanitize_rejects_majority_damage() {
        let mut trace = busy_trace(6);
        for row in trace.iter_mut().take(4) {
            row.set(Counter::Cycles, COUNTER_PLAUSIBLE_MAX * 2);
        }
        let report = sanitize_trace(&mut trace);
        assert!(report.rejected(), "{report}");
    }
}
