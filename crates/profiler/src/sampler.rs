//! Counter-trace post-processing: matrix form, feature ordering, scaling.
//!
//! A sampled run yields `trace_len` counter snapshots; multi-grain scanning
//! consumes them as a 29 x T matrix. Figure 7c shows the *ordering* of the
//! 29 counter rows matters: grouping correlated counters (all L1d together,
//! all LLC together) lets convolution windows capture correlated events,
//! while a shuffled ordering destroys that spatial locality. Both orderings
//! are provided so the ablation can be reproduced.

use stca_cachesim::{Counter, CounterSet, COUNTER_COUNT};
use stca_util::{Matrix, Rng64};

/// How counter rows are ordered in the trace matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterOrdering {
    /// Canonical grouped order (correlated counters adjacent).
    Grouped,
    /// Deterministically shuffled with the given seed (destroys locality).
    Shuffled(u64),
}

/// Permutation of the 29 counters for an ordering. `perm[i]` is the counter
/// index placed at row `i`.
pub fn ordering_permutation(ordering: CounterOrdering) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..COUNTER_COUNT).collect();
    if let CounterOrdering::Shuffled(seed) = ordering {
        let mut rng = Rng64::new(seed);
        rng.shuffle(&mut perm);
    }
    perm
}

/// Convert a sampled trace to a `29 x T` matrix under the given ordering,
/// with `log1p` scaling (counter magnitudes span 6 orders of magnitude;
/// trees are scale-free per split but windowed kernels mix features, and the
/// compression keeps any single counter from dominating a window).
pub fn trace_to_matrix(trace: &[CounterSet], ordering: CounterOrdering) -> Matrix {
    stca_obs::counter("profiler.sampler.traces_converted_total").inc();
    let perm = ordering_permutation(ordering);
    let t = trace.len();
    let mut m = Matrix::zeros(COUNTER_COUNT, t);
    for (col, snap) in trace.iter().enumerate() {
        let feats = snap.to_features();
        for (row, &src) in perm.iter().enumerate() {
            m[(row, col)] = feats[src].ln_1p();
        }
    }
    m
}

/// Flatten a trace matrix row-major (the Eq.-2 "long 1xK vector" layout).
pub fn flatten(m: &Matrix) -> Vec<f64> {
    m.as_slice().to_vec()
}

/// Human-readable row labels for a given ordering (diagnostics/examples).
pub fn row_labels(ordering: CounterOrdering) -> Vec<&'static str> {
    ordering_permutation(ordering)
        .into_iter()
        .map(|i| Counter::ALL[i].name())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Vec<CounterSet> {
        (0..5)
            .map(|i| {
                let mut c = CounterSet::new();
                c.add(Counter::LlcMisses, 10 * (i + 1));
                c.add(Counter::L1dLoads, 1000);
                c
            })
            .collect()
    }

    #[test]
    fn grouped_is_identity_permutation() {
        assert_eq!(
            ordering_permutation(CounterOrdering::Grouped),
            (0..COUNTER_COUNT).collect::<Vec<_>>()
        );
    }

    #[test]
    fn shuffled_is_a_permutation_and_deterministic() {
        let a = ordering_permutation(CounterOrdering::Shuffled(7));
        let b = ordering_permutation(CounterOrdering::Shuffled(7));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..COUNTER_COUNT).collect::<Vec<_>>());
        assert_ne!(a, ordering_permutation(CounterOrdering::Grouped));
    }

    #[test]
    fn matrix_shape_and_scaling() {
        let m = trace_to_matrix(&sample_trace(), CounterOrdering::Grouped);
        assert_eq!(m.rows(), COUNTER_COUNT);
        assert_eq!(m.cols(), 5);
        // LlcMisses row: ln(1+10), ln(1+20), ...
        let row = Counter::LlcMisses as usize;
        assert!((m[(row, 0)] - (11f64).ln()).abs() < 1e-12);
        assert!(m[(row, 4)] > m[(row, 0)]);
    }

    #[test]
    fn shuffled_matrix_holds_same_values_in_different_rows() {
        let g = trace_to_matrix(&sample_trace(), CounterOrdering::Grouped);
        let s = trace_to_matrix(&sample_trace(), CounterOrdering::Shuffled(3));
        let perm = ordering_permutation(CounterOrdering::Shuffled(3));
        for (row, &src) in perm.iter().enumerate() {
            assert_eq!(s.row(row), g.row(src));
        }
    }

    #[test]
    fn flatten_length() {
        let m = trace_to_matrix(&sample_trace(), CounterOrdering::Grouped);
        assert_eq!(flatten(&m).len(), COUNTER_COUNT * 5);
    }

    #[test]
    fn labels_follow_permutation() {
        let labels = row_labels(CounterOrdering::Grouped);
        assert_eq!(labels[0], "inst_retired");
        assert_eq!(labels.len(), COUNTER_COUNT);
        let shuffled = row_labels(CounterOrdering::Shuffled(3));
        let perm = ordering_permutation(CounterOrdering::Shuffled(3));
        for (i, &src) in perm.iter().enumerate() {
            assert_eq!(shuffled[i], Counter::ALL[src].name());
        }
    }

    #[test]
    fn empty_trace_produces_empty_matrix() {
        let m = trace_to_matrix(&[], CounterOrdering::Grouped);
        assert_eq!(m.rows(), COUNTER_COUNT);
        assert_eq!(m.cols(), 0);
    }
}
