//! The collocated test environment (§3.1 / §4).
//!
//! Two (or more) benchmark stations share one simulated cache hierarchy.
//! Each station is an open-loop queueing system: Poisson arrivals at the
//! condition's utilization, a FIFO queue, and two servers (the paper
//! provisions 2 cores per workload). Execution is *quantum-interleaved*:
//! every scheduling round, each busy station drives a quantum of memory
//! accesses through the shared LLC, so cache contention between collocated
//! services emerges from real interleaved fills — a station boosted into the
//! shared ways evicts its neighbour's shared-way lines and vice versa.
//!
//! Each station keeps its own virtual clock (benchmarks differ in service
//! time by 5 orders of magnitude; what couples them is *cache pressure*,
//! which the round-robin interleaving models, not wall-clock alignment).
//! Service-time calibration runs each benchmark solo on its private
//! allocation and sets a cycles→seconds factor such that the solo mean
//! service time equals the Table-1 baseline; at run time, contention and
//! boosts change cycles-per-access and therefore realized service times.

use crate::proxy::ProxyService;
use stca_cachesim::{Counter, CounterSet, Hierarchy, HierarchyConfig, MaskMode};
use stca_cat::layout::ExperimentLayout;
use stca_cat::ShortTermPolicy;
use stca_fault::{with_retry, FaultPlan, RetryPolicy, StcaError};
use stca_util::{Distribution, Percentiles, Rng64, Seconds};
use stca_workloads::{AccessGenerator, RuntimeCondition, WorkloadSpec};
use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};

/// Full description of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Cache hierarchy configuration (usually `experiment_default()`).
    pub config: HierarchyConfig,
    /// The runtime condition: benchmarks, utilizations, timeouts, sampling.
    pub condition: RuntimeCondition,
    /// Way layout for the collocated workloads (pair or chain).
    pub layout: ExperimentLayout,
    /// Measured queries per workload.
    pub measured_queries: usize,
    /// Warm-up queries per workload (excluded from statistics).
    pub warmup_queries: usize,
    /// Override the per-benchmark mean accesses per query (tests use small
    /// values; `None` uses each spec's default).
    pub accesses_per_query: Option<u64>,
    /// Counter-trace length (columns of the Eq.-2 profile matrix).
    pub trace_len: usize,
    /// Accesses per scheduling quantum.
    pub quantum: u64,
    /// How LLC masks are enforced (CAT fill-only vs strict partitioning;
    /// the `ablation_maskmode` bench compares the two).
    pub mask_mode: MaskMode,
    /// Experiment seed.
    pub seed: u64,
}

impl ExperimentSpec {
    /// Standard experiment shape used by the figure harnesses.
    pub fn standard(condition: RuntimeCondition, seed: u64) -> Self {
        ExperimentSpec {
            config: HierarchyConfig::experiment_default(),
            condition,
            layout: ExperimentLayout::pair_symmetric(2, 2),
            measured_queries: 300,
            warmup_queries: 40,
            accesses_per_query: None,
            trace_len: 20,
            quantum: 256,
            mask_mode: MaskMode::FillOnly,
            seed,
        }
    }

    /// Small, fast shape for unit tests.
    pub fn quick(condition: RuntimeCondition, seed: u64) -> Self {
        ExperimentSpec {
            config: HierarchyConfig::experiment_default().scaled_down(4),
            condition,
            layout: ExperimentLayout::pair_symmetric(2, 2),
            measured_queries: 60,
            warmup_queries: 10,
            accesses_per_query: Some(400),
            trace_len: 20,
            quantum: 128,
            mask_mode: MaskMode::FillOnly,
            seed,
        }
    }
}

/// Measured outputs for one workload of an experiment.
#[derive(Debug, Clone)]
pub struct WorkloadOutcome {
    /// Which benchmark this station ran.
    pub benchmark: stca_workloads::BenchmarkId,
    /// The policy the station ran under.
    pub policy: ShortTermPolicy,
    /// Per-query response times (measured window only).
    pub response_times: Vec<Seconds>,
    /// Per-query queueing delays.
    pub queue_delays: Vec<Seconds>,
    /// Per-query realized service times.
    pub service_times: Vec<Seconds>,
    /// Whether each query executed under a boost at some point.
    pub boosted: Vec<bool>,
    /// Sampled counter trace (zero-padded to `trace_len` rows).
    pub trace: Vec<CounterSet>,
    /// Cycles per access at the default allocation.
    pub cycles_per_access_default: f64,
    /// Cycles per access while boosted (0 when never boosted).
    pub cycles_per_access_boosted: f64,
    /// Measured effective cache allocation (Eq. 3).
    pub effective_allocation: f64,
    /// Unbiased estimate of the mean service time at the default
    /// allocation under this condition's contention: mean demand x default
    /// cycles-per-access x the calibrated cycles->seconds factor. (Averaging
    /// unboosted queries instead would be biased at high load: only short
    /// queries finish before the timeout.)
    pub base_service_default: Seconds,
    /// COS switches performed by the proxy.
    pub cos_switches: u64,
    /// Expected (Table-1 baseline) service time used for Eq. 4.
    pub expected_service: Seconds,
}

impl WorkloadOutcome {
    /// Mean response time.
    pub fn mean_response(&self) -> Seconds {
        assert!(!self.response_times.is_empty());
        self.response_times.iter().sum::<f64>() / self.response_times.len() as f64
    }

    /// Response-time quantile.
    pub fn response_quantile(&self, q: f64) -> Seconds {
        let mut p = Percentiles::with_capacity(self.response_times.len());
        p.extend_from(&self.response_times);
        p.quantile(q)
    }

    /// 95th-percentile response time.
    pub fn p95_response(&self) -> Seconds {
        self.response_quantile(0.95)
    }

    /// Mean realized service time.
    pub fn mean_service(&self) -> Seconds {
        assert!(!self.service_times.is_empty());
        self.service_times.iter().sum::<f64>() / self.service_times.len() as f64
    }

    /// Mean queueing delay.
    pub fn mean_queue_delay(&self) -> Seconds {
        if self.queue_delays.is_empty() {
            0.0
        } else {
            self.queue_delays.iter().sum::<f64>() / self.queue_delays.len() as f64
        }
    }

    /// Fraction of queries that were boosted.
    pub fn boost_fraction(&self) -> f64 {
        if self.boosted.is_empty() {
            0.0
        } else {
            self.boosted.iter().filter(|&&b| b).count() as f64 / self.boosted.len() as f64
        }
    }

    /// Estimated mean service time at the default allocation under this
    /// condition's contention.
    pub fn base_service_estimate(&self) -> Seconds {
        self.base_service_default
    }
}

/// Outcome of a full experiment (all collocated workloads).
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// One outcome per station, in condition order.
    pub workloads: Vec<WorkloadOutcome>,
}

#[derive(Debug, Clone)]
struct ActiveQuery {
    id: u64,
    arrival: Seconds,
    start: Seconds,
    /// This query's own server timeline (start + accumulated service).
    now: Seconds,
    remaining: u64,
    service_accum: Seconds,
    was_boosted: bool,
}

struct Station {
    wid: u32,
    spec: WorkloadSpec,
    gen: AccessGenerator,
    proxy: ProxyService,
    sec_per_cycle: f64,
    servers: usize,
    /// Arrival/timeout frontier: the station has simulated up to here.
    station_time: Seconds,
    /// Times at which currently-free servers became free (len + active.len()
    /// == servers).
    free_servers: Vec<Seconds>,
    next_arrival: Seconds,
    inter_arrival: Distribution,
    demand: Distribution,
    accesses_mean: u64,
    rng: Rng64,
    fifo: VecDeque<(u64, Seconds)>,
    active: Vec<ActiveQuery>,
    next_id: u64,
    // results
    warmup: usize,
    target: usize,
    completed_total: usize,
    response_times: Vec<Seconds>,
    queue_delays: Vec<Seconds>,
    service_times: Vec<Seconds>,
    boosted_flags: Vec<bool>,
    // boost-state cycle accounting
    default_cycles: u64,
    default_accesses: u64,
    boosted_cycles: u64,
    boosted_accesses: u64,
    // sampling
    windows: usize,
    window_size: usize,
    trace: Vec<CounterSet>,
    last_snap: CounterSet,
    mask_installed_boosted: Option<bool>,
}

impl Station {
    fn done(&self) -> bool {
        self.response_times.len() >= self.target
    }

    fn demand_accesses(&mut self) -> u64 {
        let mult = self.demand.sample(&mut self.rng).max(0.05);
        ((self.accesses_mean as f64) * mult).round().max(1.0) as u64
    }
}

/// Global executor metrics, resolved once (experiments run in tight bench
/// loops; per-run quantities are accumulated locally and flushed at the
/// end of each run).
struct ExecMetrics {
    experiments: Arc<stca_obs::Counter>,
    trace_samples: Arc<stca_obs::Counter>,
    cos_switches: Arc<stca_obs::Counter>,
    ea: Arc<stca_obs::Histogram>,
    run_seconds: Arc<stca_obs::Histogram>,
}

fn exec_metrics() -> &'static ExecMetrics {
    static METRICS: OnceLock<ExecMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ExecMetrics {
        experiments: stca_obs::counter("profiler.experiments_total"),
        trace_samples: stca_obs::counter("profiler.trace_samples_total"),
        cos_switches: stca_obs::counter("profiler.cos_switches_total"),
        ea: stca_obs::histogram("profiler.ea"),
        run_seconds: stca_obs::histogram("profiler.experiment_seconds"),
    })
}

/// The collocated test environment.
pub struct TestEnvironment {
    spec: ExperimentSpec,
}

impl TestEnvironment {
    /// Create an environment for a spec. The layout must host exactly the
    /// condition's workload count and fit in the configured LLC.
    ///
    /// Panics on an invalid spec; fault-tolerant callers use [`try_new`].
    ///
    /// [`try_new`]: TestEnvironment::try_new
    pub fn new(spec: ExperimentSpec) -> Self {
        match Self::try_new(spec) {
            Ok(env) => env,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`new`](TestEnvironment::new) with spec validation surfaced as a
    /// [`StcaError::InvalidInput`] instead of a panic.
    pub fn try_new(spec: ExperimentSpec) -> Result<Self, StcaError> {
        if spec.condition.workloads.len() < 2 {
            return Err(StcaError::invalid_input(format!(
                "collocation needs at least two workloads, got {}",
                spec.condition.workloads.len()
            )));
        }
        if spec.layout.workloads() != spec.condition.workloads.len() {
            return Err(StcaError::invalid_input(format!(
                "layout must host the condition's {1} workloads, but has {0} regions",
                spec.layout.workloads(),
                spec.condition.workloads.len()
            )));
        }
        if spec.layout.total_ways() > spec.config.llc.ways {
            return Err(StcaError::invalid_input(format!(
                "layout needs {} ways but the LLC has {}",
                spec.layout.total_ways(),
                spec.config.llc.ways
            )));
        }
        Ok(TestEnvironment { spec })
    }

    /// Run one fault-injected attempt: roll run-level faults (crash,
    /// timeout) keyed to `(plan seed, spec seed, attempt)`, execute the
    /// experiment, mangle each station's trace per the plan, and sanitize
    /// the result. Under [`FaultPlan::none`] this is exactly [`run`].
    ///
    /// [`run`]: TestEnvironment::run
    pub fn run_attempt(
        &self,
        plan: &FaultPlan,
        attempt: u32,
    ) -> Result<ExperimentOutcome, StcaError> {
        let injector = plan.injector(self.spec.seed, attempt);
        if !injector.is_active() {
            return Ok(self.run());
        }
        // roll the cheap run-level faults before paying for the run
        injector.attempt_outcome()?;
        let _latency = injector.injected_latency_s();
        let mut out = self.run();
        for (station, w) in out.workloads.iter_mut().enumerate() {
            crate::sampler::apply_faults(&injector, station as u64, &mut w.trace);
            let report = crate::sampler::sanitize_trace(&mut w.trace);
            if report.rejected() {
                return Err(StcaError::InvalidTrace {
                    reason: format!("station {station}: {report}"),
                });
            }
        }
        Ok(out)
    }

    /// [`run_attempt`] under a retry policy: transient failures (injected
    /// crashes/timeouts, rejected traces) re-roll with a fresh attempt
    /// number until success or [`StcaError::RetriesExhausted`].
    ///
    /// [`run_attempt`]: TestEnvironment::run_attempt
    pub fn run_with_retry(
        &self,
        plan: &FaultPlan,
        retry: &RetryPolicy,
    ) -> Result<ExperimentOutcome, StcaError> {
        with_retry(retry, self.spec.seed, |attempt| {
            self.run_attempt(plan, attempt)
        })
    }

    /// Calibrate one benchmark's cycles→seconds factor: run it solo on its
    /// private allocation and match the Table-1 mean service time.
    fn calibrate(
        spec: &WorkloadSpec,
        config: &HierarchyConfig,
        policy: &ShortTermPolicy,
        accesses_mean: u64,
        seed: u64,
    ) -> f64 {
        let mut hier = Hierarchy::new(*config, seed ^ 0xCA11);
        let ways = config.llc.ways;
        hier.set_llc_mask(0, policy.default.to_cbm(ways).expect("layout fits cache"));
        let mut gen = AccessGenerator::new(
            spec.pattern_for(config),
            0,
            spec.store_fraction,
            seed ^ 0xACCE,
        );
        let mut rng = Rng64::new(seed ^ 0x5EED);
        let cal_queries = 24;
        let warm = 6;
        let mut measured_cycles = 0u64;
        let mut measured_queries = 0u64;
        for q in 0..cal_queries {
            let before = hier.counters_of(0).get(Counter::Cycles);
            for _ in 0..accesses_mean {
                let (a, k) = gen.next_access();
                hier.access(0, a, k);
                if rng.next_bool(spec.ifetch_per_access) {
                    let (ai, ki) = gen.next_ifetch();
                    hier.access(0, ai, ki);
                }
            }
            hier.retire(
                0,
                accesses_mean * spec.instructions_per_access,
                accesses_mean * spec.instructions_per_access,
            );
            if q >= warm {
                measured_cycles += hier.counters_of(0).get(Counter::Cycles) - before;
                measured_queries += 1;
            }
        }
        let mean_cycles = measured_cycles as f64 / measured_queries as f64;
        spec.mean_service_time / mean_cycles
    }

    /// Run the experiment with the condition's policies.
    pub fn run(&self) -> ExperimentOutcome {
        self.run_with_policies(None)
    }

    /// Run with every station's short-term allocation disabled (the
    /// `(a, a, 0)` baseline of Eq. 3).
    pub fn run_baseline(&self) -> ExperimentOutcome {
        self.run_with_policies(Some(self.spec.layout.static_policies()))
    }

    /// Run with explicit per-station policies (competing allocation schemes
    /// install their own settings through this hook).
    pub fn run_with_policies(&self, policies: Option<Vec<ShortTermPolicy>>) -> ExperimentOutcome {
        let metrics = exec_metrics();
        let timer = stca_obs::StageTimer::with_histogram(metrics.run_seconds.clone());
        let spec = &self.spec;
        let config = &spec.config;
        let ways = config.llc.ways;
        let timeouts: Vec<f64> = spec
            .condition
            .workloads
            .iter()
            .map(|w| w.timeout_ratio)
            .collect();
        let policies = policies.unwrap_or_else(|| spec.layout.policies(&timeouts));
        assert_eq!(policies.len(), spec.condition.workloads.len());

        let mut hier = Hierarchy::new(*config, spec.seed);
        hier.set_mask_mode(spec.mask_mode);
        let ns = spec
            .trace_len
            .min(((40.0 / spec.condition.sample_period).floor() as usize).max(1));

        let mut stations: Vec<Station> = Vec::new();
        for (i, wc) in spec.condition.workloads.iter().enumerate() {
            let wspec = WorkloadSpec::for_benchmark(wc.benchmark);
            let accesses_mean = spec
                .accesses_per_query
                .unwrap_or(wspec.mean_accesses_per_query);
            let policy = policies[i];
            let sec_per_cycle = Self::calibrate(
                &wspec,
                config,
                &policy,
                accesses_mean,
                spec.seed ^ ((i as u64 + 1) << 32),
            );
            let servers = 2;
            let inter_arrival = Distribution::Exponential {
                mean: wspec.mean_service_time / (wc.utilization * servers as f64),
            };
            let mut rng = Rng64::new(spec.seed ^ ((i as u64 + 1) << 16));
            let first_arrival = inter_arrival.sample(&mut rng);
            let total = spec.warmup_queries + spec.measured_queries;
            let window_size = total.div_ceil(ns).max(1);
            hier.set_llc_mask(i as u32, policy.default.to_cbm(ways).expect("valid layout"));
            stations.push(Station {
                wid: i as u32,
                gen: AccessGenerator::new(
                    wspec.pattern_for(config),
                    (i as u64 + 1) << 42,
                    wspec.store_fraction,
                    spec.seed ^ ((i as u64 + 1) << 24),
                ),
                proxy: ProxyService::new(policy, wspec.mean_service_time),
                sec_per_cycle,
                servers,
                station_time: 0.0,
                free_servers: vec![0.0; servers],
                next_arrival: first_arrival,
                inter_arrival,
                demand: wspec.demand.clone(),
                accesses_mean,
                rng,
                fifo: VecDeque::new(),
                active: Vec::new(),
                next_id: 0,
                warmup: spec.warmup_queries,
                target: spec.measured_queries,
                completed_total: 0,
                response_times: Vec::with_capacity(spec.measured_queries),
                queue_delays: Vec::with_capacity(spec.measured_queries),
                service_times: Vec::with_capacity(spec.measured_queries),
                boosted_flags: Vec::with_capacity(spec.measured_queries),
                default_cycles: 0,
                default_accesses: 0,
                boosted_cycles: 0,
                boosted_accesses: 0,
                windows: ns,
                window_size,
                trace: Vec::with_capacity(spec.trace_len),
                last_snap: CounterSet::new(),
                mask_installed_boosted: Some(false),
                spec: wspec,
            });
        }

        // main round-robin loop
        let mut safety = 0u64;
        let safety_cap = 200_000_000 / spec.quantum.max(1); // generous
        while stations.iter().any(|s| !s.done()) {
            safety += 1;
            assert!(safety < safety_cap, "experiment failed to converge");
            for s in stations.iter_mut() {
                if s.done() {
                    // finished stations keep generating load until all done,
                    // but cap their extra work to avoid unbounded runs
                    if s.completed_total > 4 * (s.warmup + s.target) {
                        continue;
                    }
                }
                Self::step_station(s, &mut hier, spec.quantum);
            }
        }

        // package outcomes
        let outcomes = stations
            .into_iter()
            .map(|mut s| {
                metrics.trace_samples.add(s.trace.len() as u64);
                metrics.cos_switches.add(s.proxy.switch_count());
                // pad trace to trace_len
                while s.trace.len() < spec.trace_len {
                    s.trace.push(CounterSet::new());
                }
                let cpa_d = if s.default_accesses > 0 {
                    s.default_cycles as f64 / s.default_accesses as f64
                } else {
                    0.0
                };
                let cpa_b = if s.boosted_accesses > 0 {
                    s.boosted_cycles as f64 / s.boosted_accesses as f64
                } else {
                    0.0
                };
                let ratio = s.proxy.policy().allocation_ratio().max(1.0);
                let ea = if cpa_b > 0.0 && cpa_d > 0.0 {
                    crate::ea::effective_allocation(cpa_d, cpa_b, ratio)
                } else {
                    // boost never exercised: the grant bought nothing
                    1.0 / ratio
                };
                metrics.ea.record(ea);
                let base_service_default = if cpa_d > 0.0 {
                    s.accesses_mean as f64 * cpa_d * s.sec_per_cycle
                } else if cpa_b > 0.0 {
                    // everything ran boosted; back out the default rate via EA
                    s.accesses_mean as f64 * cpa_b * ea * ratio * s.sec_per_cycle
                } else {
                    s.spec.mean_service_time
                };
                WorkloadOutcome {
                    benchmark: s.spec.id,
                    policy: *s.proxy.policy(),
                    response_times: s.response_times,
                    queue_delays: s.queue_delays,
                    service_times: s.service_times,
                    boosted: s.boosted_flags,
                    trace: s.trace,
                    cycles_per_access_default: cpa_d,
                    cycles_per_access_boosted: cpa_b,
                    effective_allocation: ea,
                    base_service_default,
                    cos_switches: s.proxy.switch_count(),
                    expected_service: s.spec.mean_service_time,
                }
            })
            .collect();
        metrics.experiments.inc();
        let elapsed = timer.stop();
        stca_obs::debug!(
            "experiment done in {elapsed:.3}s: {} workloads x {} measured queries",
            spec.condition.workloads.len(),
            spec.measured_queries
        );
        ExperimentOutcome {
            workloads: outcomes,
        }
    }

    fn step_station(s: &mut Station, hier: &mut Hierarchy, quantum: u64) {
        // 1. generate arrivals up to the station frontier
        while s.next_arrival <= s.station_time {
            let id = s.next_id;
            s.next_id += 1;
            s.fifo.push_back((id, s.next_arrival));
            let gap = s.inter_arrival.sample(&mut s.rng).max(1e-12);
            s.next_arrival += gap;
        }
        // 2. start queued queries on free servers; each runs on its own
        //    server timeline (start = max(arrival, server-free time))
        while s.active.len() < s.servers && !s.fifo.is_empty() {
            let (id, arrival) = s.fifo.pop_front().expect("nonempty");
            // take the earliest-free server
            let (si, _) = s
                .free_servers
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite"))
                .expect("free server exists");
            let sf = s.free_servers.swap_remove(si);
            let start = arrival.max(sf);
            let remaining = s.demand_accesses();
            s.active.push(ActiveQuery {
                id,
                arrival,
                start,
                now: start,
                remaining,
                service_accum: 0.0,
                was_boosted: false,
            });
        }
        // 3. idle jump: nothing to run, advance to the next arrival
        if s.active.is_empty() {
            s.station_time = s.station_time.max(s.next_arrival);
            return;
        }
        // 4. timeout checks (queued queries count: time in system includes
        //    queueing, which is how a query can start service pre-boosted)
        let station_time = s.station_time;
        for &(id, arrival) in s.fifo.iter() {
            s.proxy.check(id, arrival, station_time);
        }
        for q in &s.active {
            s.proxy.check(q.id, q.arrival, q.now);
        }
        // 5. install the proxy's current setting
        let setting = s.proxy.current_setting();
        let boost_active = s.proxy.boost_active();
        if s.mask_installed_boosted != Some(boost_active) {
            hier.set_llc_mask(
                s.wid,
                setting
                    .to_cbm(hier.config().llc.ways)
                    .expect("layout validated at construction"),
            );
            s.mask_installed_boosted = Some(boost_active);
        }
        // 6. execute one quantum per active query (servers run concurrently,
        //    each on its own timeline)
        let spec_ifetch = s.spec.ifetch_per_access;
        let spec_ipa = s.spec.instructions_per_access;
        for qi in 0..s.active.len() {
            let n = quantum.min(s.active[qi].remaining);
            if n == 0 {
                continue;
            }
            let before = hier.counters_of(s.wid).get(Counter::Cycles);
            for _ in 0..n {
                let (a, k) = s.gen.next_access();
                hier.access(s.wid, a, k);
                if s.rng.next_bool(spec_ifetch) {
                    let (ai, ki) = s.gen.next_ifetch();
                    hier.access(s.wid, ai, ki);
                }
            }
            hier.retire(s.wid, n * spec_ipa, n * spec_ipa);
            let cycles = hier.counters_of(s.wid).get(Counter::Cycles) - before;
            let elapsed = cycles as f64 * s.sec_per_cycle;
            let q = &mut s.active[qi];
            q.remaining -= n;
            q.service_accum += elapsed;
            q.now += elapsed;
            if boost_active {
                q.was_boosted = true;
                s.boosted_cycles += cycles;
                s.boosted_accesses += n;
            } else {
                s.default_cycles += cycles;
                s.default_accesses += n;
            }
        }
        // 7. completions: the query's own timeline is its completion time
        let warmup = s.warmup;
        let target = s.target;
        let mut finished: Vec<ActiveQuery> = Vec::new();
        s.active.retain(|q| {
            if q.remaining == 0 {
                finished.push(q.clone());
                false
            } else {
                true
            }
        });
        let mut frontier = s.station_time;
        for q in &s.active {
            frontier = frontier.max(q.now);
        }
        for q in finished {
            s.proxy.complete(q.id);
            s.free_servers.push(q.now);
            frontier = frontier.max(q.now);
            s.completed_total += 1;
            if s.completed_total > warmup && s.response_times.len() < target {
                s.response_times.push(q.now - q.arrival);
                s.queue_delays.push(q.start - q.arrival);
                s.service_times.push(q.service_accum);
                s.boosted_flags.push(q.was_boosted);
            }
        }
        s.station_time = frontier;
        // 8. counter-trace sampling at window boundaries
        while s.trace.len() < s.windows && s.completed_total >= (s.trace.len() + 1) * s.window_size
        {
            hier.update_gauges(s.wid, boost_active);
            let now = hier.counters_of(s.wid);
            let mut delta = now.delta(&s.last_snap);
            // gauges are levels, not deltas
            delta.set(
                Counter::LlcOccupancyLines,
                now.get(Counter::LlcOccupancyLines),
            );
            delta.set(Counter::BoostActive, now.get(Counter::BoostActive));
            s.trace.push(delta);
            s.last_snap = now;
        }
    }
}

/// One-shot checked experiment: validate the spec, then run it under the
/// fault plan and retry policy. This is the entry point the CLI and the
/// bench dataset builder use on the fault-tolerant path.
pub fn run_experiment_checked(
    spec: ExperimentSpec,
    plan: &FaultPlan,
    retry: &RetryPolicy,
) -> Result<ExperimentOutcome, StcaError> {
    TestEnvironment::try_new(spec)?.run_with_retry(plan, retry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stca_workloads::BenchmarkId;

    fn quick(a: BenchmarkId, b: BenchmarkId, ta: f64, tb: f64, seed: u64) -> ExperimentOutcome {
        let cond = RuntimeCondition::pair(a, 0.7, ta, b, 0.7, tb);
        TestEnvironment::new(ExperimentSpec::quick(cond, seed)).run()
    }

    #[test]
    fn produces_measured_queries_for_both_workloads() {
        let out = quick(BenchmarkId::Knn, BenchmarkId::Bfs, 1.0, 1.0, 1);
        assert_eq!(out.workloads.len(), 2);
        for w in &out.workloads {
            assert_eq!(w.response_times.len(), 60);
            assert_eq!(w.trace.len(), 20);
            assert!(w.mean_response() > 0.0);
            assert!(w.mean_service() > 0.0);
            // response >= service (queueing can only add)
            assert!(w.mean_response() >= w.mean_service() * 0.99);
        }
    }

    #[test]
    fn calibration_brings_service_time_near_spec() {
        // low utilization + never-boost: realized mean service should sit
        // near the Table-1 baseline (contention still perturbs it some)
        let cond =
            RuntimeCondition::pair(BenchmarkId::Knn, 0.3, 6.0, BenchmarkId::Kmeans, 0.3, 6.0);
        let out = TestEnvironment::new(ExperimentSpec::quick(cond, 2)).run();
        let knn = &out.workloads[0];
        let expected = knn.expected_service;
        let realized = knn.mean_service();
        assert!(
            (realized - expected).abs() / expected < 0.5,
            "calibrated service time {realized} vs spec {expected}"
        );
    }

    #[test]
    fn zero_timeout_boosts_most_queries() {
        let out = quick(BenchmarkId::Redis, BenchmarkId::Social, 0.0, 6.0, 3);
        let redis = &out.workloads[0];
        assert!(
            redis.boost_fraction() > 0.9,
            "T=0 boosts everything, got {}",
            redis.boost_fraction()
        );
        let social = &out.workloads[1];
        assert_eq!(social.boost_fraction(), 0.0, "T=600% never boosts");
        assert!(redis.cos_switches > 0);
        assert_eq!(social.cos_switches, 0);
    }

    #[test]
    fn effective_allocation_in_sane_range() {
        let out = quick(BenchmarkId::Kmeans, BenchmarkId::Bfs, 0.5, 0.5, 4);
        for w in &out.workloads {
            assert!(
                w.effective_allocation > 0.1 && w.effective_allocation < 1.5,
                "{}: EA {}",
                w.benchmark,
                w.effective_allocation
            );
        }
    }

    #[test]
    fn boost_speeds_up_cache_sensitive_workload() {
        // kmeans has a hot set larger than its 2 private (scaled) ways;
        // cycles-per-access while always-boosted (T=0) should not exceed
        // cycles-per-access when never boosted (T=600%)
        let never = quick(BenchmarkId::Kmeans, BenchmarkId::Knn, 6.0, 6.0, 5);
        let always = quick(BenchmarkId::Kmeans, BenchmarkId::Knn, 0.0, 6.0, 5);
        let cpa_default = never.workloads[0].cycles_per_access_default;
        let cpa_boosted = always.workloads[0].cycles_per_access_boosted;
        assert!(cpa_default > 0.0 && cpa_boosted > 0.0);
        assert!(
            cpa_boosted < cpa_default * 1.05,
            "boost should not slow a solo booster: {cpa_boosted} vs {cpa_default}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick(BenchmarkId::Jacobi, BenchmarkId::Bfs, 1.0, 2.0, 9);
        let b = quick(BenchmarkId::Jacobi, BenchmarkId::Bfs, 1.0, 2.0, 9);
        assert_eq!(a.workloads[0].response_times, b.workloads[0].response_times);
        assert_eq!(a.workloads[1].service_times, b.workloads[1].service_times);
    }

    #[test]
    fn baseline_run_never_boosts() {
        let cond =
            RuntimeCondition::pair(BenchmarkId::Redis, 0.8, 0.5, BenchmarkId::Social, 0.8, 0.5);
        let out = TestEnvironment::new(ExperimentSpec::quick(cond, 6)).run_baseline();
        for w in &out.workloads {
            assert_eq!(w.boost_fraction(), 0.0);
            assert_eq!(w.cos_switches, 0);
        }
    }

    #[test]
    fn trace_rows_contain_activity() {
        let out = quick(BenchmarkId::Bfs, BenchmarkId::Spstream, 1.0, 1.0, 7);
        let w = &out.workloads[0];
        let active_rows = w
            .trace
            .iter()
            .filter(|c| c.get(Counter::LlcAccesses) > 0)
            .count();
        assert!(
            active_rows >= 10,
            "most windows show LLC traffic, got {active_rows}"
        );
    }

    #[test]
    fn slower_sampling_yields_fewer_informative_windows() {
        // Table 2's sampling knob: at 5s the trace has at most 8 informative
        // windows (40 sampling-seconds / 5), the rest zero-padded; at 2s
        // it fills the full 20-column matrix
        let run_with_period = |period: f64| {
            let mut cond =
                RuntimeCondition::pair(BenchmarkId::Knn, 0.7, 6.0, BenchmarkId::Bfs, 0.7, 6.0);
            cond.sample_period = period;
            let out = TestEnvironment::new(ExperimentSpec::quick(cond, 31)).run();
            out.workloads[0]
                .trace
                .iter()
                .filter(|c| c.get(Counter::LlcAccesses) > 0)
                .count()
        };
        let fast = run_with_period(2.0);
        let slow = run_with_period(5.0);
        assert!(
            slow <= 8,
            "5s sampling caps informative windows, got {slow}"
        );
        assert!(
            fast > slow,
            "2s sampling fills more windows: {fast} vs {slow}"
        );
    }

    #[test]
    fn queue_delay_nonnegative_and_bounded_by_response() {
        let out = quick(BenchmarkId::Social, BenchmarkId::Redis, 1.0, 1.0, 17);
        for w in &out.workloads {
            for ((r, s), d) in w
                .response_times
                .iter()
                .zip(&w.service_times)
                .zip(&w.queue_delays)
            {
                assert!(*d >= 0.0);
                assert!(r + 1e-9 >= d + s, "response {r} >= delay {d} + service {s}");
            }
        }
    }

    #[test]
    fn try_new_rejects_invalid_specs() {
        let cond = RuntimeCondition::pair(BenchmarkId::Knn, 0.7, 1.0, BenchmarkId::Bfs, 0.7, 1.0);
        let mut spec = ExperimentSpec::quick(cond, 1);
        spec.condition.workloads.truncate(1);
        assert!(matches!(
            TestEnvironment::try_new(spec.clone()),
            Err(StcaError::InvalidInput { .. })
        ));
        let cond = RuntimeCondition::pair(BenchmarkId::Knn, 0.7, 1.0, BenchmarkId::Bfs, 0.7, 1.0);
        let mut spec = ExperimentSpec::quick(cond, 1);
        spec.layout = ExperimentLayout::pair_symmetric(64, 64);
        assert!(matches!(
            TestEnvironment::try_new(spec),
            Err(StcaError::InvalidInput { .. })
        ));
    }

    #[test]
    fn checked_run_without_faults_matches_unchecked() {
        let cond = RuntimeCondition::pair(BenchmarkId::Knn, 0.7, 1.0, BenchmarkId::Bfs, 0.7, 1.0);
        let spec = ExperimentSpec::quick(cond, 11);
        let plain = TestEnvironment::new(spec.clone()).run();
        let checked = run_experiment_checked(spec, &FaultPlan::none(), &RetryPolicy::default())
            .expect("no faults injected");
        assert_eq!(
            plain.workloads[0].response_times,
            checked.workloads[0].response_times
        );
        assert_eq!(plain.workloads[1].trace, checked.workloads[1].trace);
    }

    #[test]
    fn certain_crash_exhausts_retries() {
        let cond = RuntimeCondition::pair(BenchmarkId::Knn, 0.7, 1.0, BenchmarkId::Bfs, 0.7, 1.0);
        let spec = ExperimentSpec::quick(cond, 12);
        let mut plan = FaultPlan::none();
        plan.seed = 7;
        plan.crash_prob = 1.0;
        let err = run_experiment_checked(spec, &plan, &RetryPolicy::with_max_retries(2))
            .expect_err("every attempt crashes");
        match err {
            StcaError::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, 3);
                assert!(matches!(*last, StcaError::InjectedCrash { .. }));
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn retry_recovers_from_probabilistic_crashes() {
        // moderate crash probability: with enough retries some seed recovers
        let cond = RuntimeCondition::pair(BenchmarkId::Knn, 0.7, 1.0, BenchmarkId::Bfs, 0.7, 1.0);
        let spec = ExperimentSpec::quick(cond, 13);
        let mut plan = FaultPlan::none();
        plan.seed = 3;
        plan.crash_prob = 0.5;
        let out = run_experiment_checked(spec, &plan, &RetryPolicy::with_max_retries(16))
            .expect("recovers within 16 retries");
        assert_eq!(out.workloads.len(), 2);
        assert_eq!(out.workloads[0].response_times.len(), 60);
    }

    #[test]
    fn faulted_run_is_deterministic() {
        let run_once = || {
            let cond =
                RuntimeCondition::pair(BenchmarkId::Knn, 0.7, 1.0, BenchmarkId::Bfs, 0.7, 1.0);
            let spec = ExperimentSpec::quick(cond, 21);
            run_experiment_checked(spec, &FaultPlan::ci_default(), &RetryPolicy::default())
                .expect("ci-default plan is survivable")
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.workloads[0].trace, b.workloads[0].trace);
        assert_eq!(a.workloads[1].trace, b.workloads[1].trace);
        assert_eq!(a.workloads[0].response_times, b.workloads[0].response_times);
    }

    #[test]
    fn higher_utilization_raises_response_time() {
        let run_at = |util: f64, seed: u64| {
            let cond =
                RuntimeCondition::pair(BenchmarkId::Knn, util, 6.0, BenchmarkId::Bfs, 0.5, 6.0);
            TestEnvironment::new(ExperimentSpec::quick(cond, seed))
                .run()
                .workloads[0]
                .mean_response()
        };
        let low = run_at(0.3, 8);
        let high = run_at(0.9, 8);
        assert!(
            high > low,
            "queueing delay grows with utilization: {low} vs {high}"
        );
    }
}
