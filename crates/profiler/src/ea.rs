//! Effective cache allocation — Eq. 3 of the paper.
//!
//! EA is the *speedup* a short-term allocation policy delivers, normalized
//! by the gross increase in allocated ways:
//!
//! ```text
//! EA = ( servicetime(W(a,a,0)) / servicetime(W(a,a',t)) ) / ( l_a' / l_a )
//! ```
//!
//! Reading: a policy that doubles a workload's ways (`l_a'/l_a = 2`) and
//! thereby halves its mean service time converts the whole grant into
//! speedup — EA = 1. Low contention and high data reuse push EA toward 1;
//! heavy contention in the shared region (collocated boosts evicting each
//! other) drags it below, potentially far below when the boost buys nothing.
//!
//! (The paper's Eq. 3 typesets the service-time ratio with the boosted run
//! in the numerator; the prose — "heavy cache contention drags effective
//! allocation below 1, whereas low contention and high data reuse produce
//! values close to 1" — pins down the orientation used here.)

/// Compute effective cache allocation from measured mean service times.
///
/// * `baseline_service` — mean service time under `(a, a, 0)` (no boost);
/// * `policy_service` — mean service time under `(a, a', t)`;
/// * `allocation_ratio` — `l_a' / l_a` (>= 1 for a real boost).
///
/// Returns 0 when the policy run shows no data (degenerate inputs clamp
/// rather than produce NaN/inf, since EA feeds model training).
pub fn effective_allocation(
    baseline_service: f64,
    policy_service: f64,
    allocation_ratio: f64,
) -> f64 {
    // NaN/Inf inputs (corrupted measurements) clamp to 0 like other
    // degenerate inputs rather than poisoning every downstream label.
    if !baseline_service.is_finite() || !policy_service.is_finite() || !allocation_ratio.is_finite()
    {
        stca_obs::counter("fault.ea_invalid_inputs_total").inc();
        return 0.0;
    }
    assert!(
        allocation_ratio >= 1.0,
        "boost cannot shrink the allocation"
    );
    if policy_service <= 0.0 || baseline_service <= 0.0 {
        return 0.0;
    }
    (baseline_service / policy_service) / allocation_ratio
}

/// Invert EA back to the boost-rate multiplier used by the Stage-3 queueing
/// simulator: a boosted query processes at `EA x (l_a'/l_a)` times the
/// default rate.
pub fn boost_rate_from_ea(ea: f64, allocation_ratio: f64) -> f64 {
    (ea * allocation_ratio).max(0.05) // floor keeps simulations finite
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_conversion_is_one() {
        // doubling ways halves service time
        assert!((effective_allocation(2.0, 1.0, 2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn useless_boost_is_half_for_doubling() {
        // doubling ways, no speedup at all
        assert!((effective_allocation(1.0, 1.0, 2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn contention_slowdown_below_half() {
        // boost actually slowed the workload down (recurring contention)
        let ea = effective_allocation(1.0, 1.25, 2.0);
        assert!(ea < 0.5);
        assert!((ea - 0.4).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_clamp() {
        assert_eq!(effective_allocation(0.0, 1.0, 2.0), 0.0);
        assert_eq!(effective_allocation(1.0, 0.0, 2.0), 0.0);
    }

    #[test]
    fn roundtrip_to_boost_rate() {
        let ea = effective_allocation(2.0, 1.0, 2.0);
        assert!((boost_rate_from_ea(ea, 2.0) - 2.0).abs() < 1e-12);
        // floor applies to absurdly low EA
        assert!(boost_rate_from_ea(0.0, 2.0) > 0.0);
    }

    #[test]
    #[should_panic]
    fn ratio_below_one_rejected() {
        effective_allocation(1.0, 1.0, 0.5);
    }

    #[test]
    fn non_finite_inputs_clamp_and_count() {
        let before = stca_obs::counter("fault.ea_invalid_inputs_total").get();
        assert_eq!(effective_allocation(f64::NAN, 1.0, 2.0), 0.0);
        assert_eq!(effective_allocation(1.0, f64::INFINITY, 2.0), 0.0);
        assert_eq!(effective_allocation(1.0, 1.0, f64::NAN), 0.0);
        let after = stca_obs::counter("fault.ea_invalid_inputs_total").get();
        assert_eq!(after, before + 3);
    }
}
