//! Profile persistence — save/load profile sets as a versioned,
//! line-oriented text format.
//!
//! Profiling is the expensive stage (the paper budgets 30 minutes per
//! collocation); persisting profiles lets the modeling stages iterate
//! offline, exactly as the paper's workflow separates offline profiling
//! from model exploration. The format is deliberately plain text: floats
//! are written with Rust's shortest-round-trip formatting, so a save/load
//! cycle is bit-exact, and files diff cleanly.
//!
//! ```text
//! STCA-PROFILES v1
//! rows <N>
//! row
//! static <k> <v1> ... <vk>
//! dynamic <k> <v1> ... <vk>
//! targets <ea> <base_service_norm> <mean_response_norm> <p95_response_norm> <allocation_ratio>
//! trace <rows> <cols>
//! <cols floats per line, one line per trace row>
//! ```

use crate::profile::{ProfileRow, ProfileSet};
use stca_util::Matrix;
use std::fmt::Write as _;
use std::path::Path;

/// Errors from loading a profile file.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file contents.
    Format(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "io error: {e}"),
            StorageError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

fn fmt_floats(out: &mut String, values: &[f64]) {
    for v in values {
        out.push(' ');
        write!(out, "{v}").expect("string write");
    }
    out.push('\n');
}

/// Serialize a profile set to a string.
pub fn to_string(set: &ProfileSet) -> String {
    let mut out = String::new();
    out.push_str("STCA-PROFILES v1\n");
    writeln!(out, "rows {}", set.len()).expect("string write");
    for r in &set.rows {
        out.push_str("row\n");
        write!(out, "static {}", r.static_features.len()).expect("string write");
        fmt_floats(&mut out, &r.static_features);
        write!(out, "dynamic {}", r.dynamic_features.len()).expect("string write");
        fmt_floats(&mut out, &r.dynamic_features);
        write!(out, "targets").expect("string write");
        fmt_floats(
            &mut out,
            &[
                r.ea,
                r.base_service_norm,
                r.mean_response_norm,
                r.p95_response_norm,
                r.allocation_ratio,
            ],
        );
        writeln!(out, "trace {} {}", r.trace.rows(), r.trace.cols()).expect("string write");
        for row in 0..r.trace.rows() {
            let mut line = String::new();
            fmt_floats(&mut line, r.trace.row(row));
            out.push_str(line.trim_start());
        }
    }
    out
}

/// Save a profile set to a file.
pub fn save(set: &ProfileSet, path: &Path) -> Result<(), StorageError> {
    std::fs::write(path, to_string(set))?;
    Ok(())
}

struct Lines<'a> {
    inner: std::str::Lines<'a>,
    line_no: usize,
}

impl<'a> Lines<'a> {
    fn next(&mut self) -> Result<&'a str, StorageError> {
        self.line_no += 1;
        self.inner
            .next()
            .ok_or_else(|| StorageError::Format(format!("unexpected EOF at line {}", self.line_no)))
    }
}

fn parse_floats(s: &str, expect: Option<usize>, line_no: usize) -> Result<Vec<f64>, StorageError> {
    let vals: Result<Vec<f64>, _> = s.split_whitespace().map(|t| t.parse::<f64>()).collect();
    let vals =
        vals.map_err(|e| StorageError::Format(format!("bad float at line {line_no}: {e}")))?;
    if let Some(n) = expect {
        if vals.len() != n {
            return Err(StorageError::Format(format!(
                "expected {n} values at line {line_no}, got {}",
                vals.len()
            )));
        }
    }
    Ok(vals)
}

fn expect_tagged<'a>(lines: &mut Lines<'a>, tag: &str) -> Result<(&'a str, usize), StorageError> {
    let line = lines.next()?;
    let rest = line.strip_prefix(tag).ok_or_else(|| {
        StorageError::Format(format!(
            "expected '{tag}' at line {}, got {line:?}",
            lines.line_no
        ))
    })?;
    Ok((rest, lines.line_no))
}

/// Parse a profile set from a string.
pub fn from_string(text: &str) -> Result<ProfileSet, StorageError> {
    let mut lines = Lines {
        inner: text.lines(),
        line_no: 0,
    };
    let header = lines.next()?;
    if header != "STCA-PROFILES v1" {
        return Err(StorageError::Format(format!("bad header {header:?}")));
    }
    let (rest, ln) = expect_tagged(&mut lines, "rows ")?;
    let n: usize = rest
        .trim()
        .parse()
        .map_err(|e| StorageError::Format(format!("bad row count at line {ln}: {e}")))?;
    let mut set = ProfileSet::new();
    for _ in 0..n {
        let marker = lines.next()?;
        if marker != "row" {
            return Err(StorageError::Format(format!(
                "expected 'row' at line {}, got {marker:?}",
                lines.line_no
            )));
        }
        let (rest, ln) = expect_tagged(&mut lines, "static ")?;
        let mut parts = rest.split_whitespace();
        let k: usize = parts
            .next()
            .ok_or_else(|| StorageError::Format(format!("missing count at line {ln}")))?
            .parse()
            .map_err(|e| StorageError::Format(format!("bad count at line {ln}: {e}")))?;
        let static_features = parse_floats(&parts.collect::<Vec<_>>().join(" "), Some(k), ln)?;

        let (rest, ln) = expect_tagged(&mut lines, "dynamic ")?;
        let mut parts = rest.split_whitespace();
        let k: usize = parts
            .next()
            .ok_or_else(|| StorageError::Format(format!("missing count at line {ln}")))?
            .parse()
            .map_err(|e| StorageError::Format(format!("bad count at line {ln}: {e}")))?;
        let dynamic_features = parse_floats(&parts.collect::<Vec<_>>().join(" "), Some(k), ln)?;

        let (rest, ln) = expect_tagged(&mut lines, "targets")?;
        let targets = parse_floats(rest, Some(5), ln)?;

        let (rest, ln) = expect_tagged(&mut lines, "trace ")?;
        let dims = parse_floats(rest, Some(2), ln)?;
        let (rows, cols) = (dims[0] as usize, dims[1] as usize);
        let mut trace = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let line = lines.next()?;
            let vals = parse_floats(line, Some(cols), lines.line_no)?;
            trace.row_mut(r).copy_from_slice(&vals);
        }
        set.push(ProfileRow {
            static_features,
            dynamic_features,
            trace,
            ea: targets[0],
            base_service_norm: targets[1],
            mean_response_norm: targets[2],
            p95_response_norm: targets[3],
            allocation_ratio: targets[4],
        });
    }
    Ok(set)
}

/// Load a profile set from a file.
pub fn load(path: &Path) -> Result<ProfileSet, StorageError> {
    from_string(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> ProfileSet {
        let mut trace = Matrix::zeros(3, 4);
        for r in 0..3 {
            for c in 0..4 {
                trace[(r, c)] = (r * 4 + c) as f64 * 0.3337 + 1e-9;
            }
        }
        let mut set = ProfileSet::new();
        set.push(ProfileRow {
            static_features: vec![0.9, 1.5, 0.25, 6.0, 1.0],
            dynamic_features: vec![0.125, 2.75],
            trace,
            ea: 0.731,
            base_service_norm: 1.0625,
            mean_response_norm: 1.875,
            p95_response_norm: 3.5,
            allocation_ratio: 2.0,
        });
        set.push(ProfileRow {
            static_features: vec![0.3, 0.0, 0.5, 3.0, 2.0],
            dynamic_features: vec![0.0, 0.0],
            trace: Matrix::zeros(3, 4),
            ea: 0.5,
            base_service_norm: 1.0,
            mean_response_norm: 1.1,
            p95_response_norm: 2.2,
            allocation_ratio: 1.5,
        });
        set
    }

    #[test]
    fn roundtrip_is_exact() {
        let set = sample_set();
        let text = to_string(&set);
        let back = from_string(&text).expect("parses");
        assert_eq!(back.len(), set.len());
        for (a, b) in set.rows.iter().zip(&back.rows) {
            assert_eq!(a.static_features, b.static_features);
            assert_eq!(a.dynamic_features, b.dynamic_features);
            assert_eq!(a.trace.as_slice(), b.trace.as_slice());
            assert_eq!(a.ea, b.ea);
            assert_eq!(a.base_service_norm, b.base_service_norm);
            assert_eq!(a.mean_response_norm, b.mean_response_norm);
            assert_eq!(a.p95_response_norm, b.p95_response_norm);
            assert_eq!(a.allocation_ratio, b.allocation_ratio);
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("stca_storage_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("profiles.stca");
        let set = sample_set();
        save(&set, &path).expect("saves");
        let back = load(&path).expect("loads");
        assert_eq!(back.len(), 2);
        assert_eq!(back.rows[0].ea, 0.731);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            from_string("NOT-A-PROFILE v9\n"),
            Err(StorageError::Format(_))
        ));
    }

    #[test]
    fn rejects_truncated_file() {
        let text = to_string(&sample_set());
        let cut = &text[..text.len() / 2];
        assert!(from_string(cut).is_err());
    }

    #[test]
    fn rejects_wrong_counts() {
        let good = to_string(&sample_set());
        let bad = good.replacen("static 5", "static 7", 1);
        assert!(from_string(&bad).is_err());
    }

    #[test]
    fn extreme_floats_roundtrip() {
        let mut set = ProfileSet::new();
        set.push(ProfileRow {
            static_features: vec![f64::MIN_POSITIVE, 1e300, -0.0, 1.0 / 3.0],
            dynamic_features: vec![],
            trace: Matrix::zeros(0, 0),
            ea: f64::EPSILON,
            base_service_norm: 1e-200,
            mean_response_norm: 12345.678901234567,
            p95_response_norm: 0.1 + 0.2, // the classic
            allocation_ratio: 1.0,
        });
        let back = from_string(&to_string(&set)).expect("parses");
        assert_eq!(back.rows[0].static_features, set.rows[0].static_features);
        assert_eq!(
            back.rows[0].p95_response_norm,
            set.rows[0].p95_response_norm
        );
    }
}
