//! Profile persistence — save/load profile sets as a versioned,
//! line-oriented text format, plus the JSON row encoding shared by the
//! checkpoint files.
//!
//! Profiling is the expensive stage (the paper budgets 30 minutes per
//! collocation); persisting profiles lets the modeling stages iterate
//! offline, exactly as the paper's workflow separates offline profiling
//! from model exploration. The format is deliberately plain text: floats
//! are written with Rust's shortest-round-trip formatting, so a save/load
//! cycle is bit-exact, and files diff cleanly.
//!
//! ```text
//! STCA-PROFILES v1
//! rows <N>
//! row
//! static <k> <v1> ... <vk>
//! dynamic <k> <v1> ... <vk>
//! targets <ea> <base_service_norm> <mean_response_norm> <p95_response_norm> <allocation_ratio>
//! trace <rows> <cols>
//! <cols floats per line, one line per trace row>
//! ```
//!
//! Checkpoint entries instead store rows as [`stca_obs::json::Value`]
//! objects with every float bit-encoded as 16 hex chars (see
//! [`row_to_json`] / [`row_from_json`]), because JSON `Number` cannot
//! represent NaN and loses low bits; checkpoint resume must be bit-exact.

use crate::profile::{ProfileRow, ProfileSet};
use stca_fault::checkpoint::{f64s_to_value, value_to_f64s};
use stca_fault::StcaError;
use stca_obs::json::Value;
use stca_util::Matrix;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

fn format_err(context: impl Into<String>) -> StcaError {
    StcaError::Format {
        context: context.into(),
    }
}

fn fmt_floats(out: &mut String, values: &[f64]) {
    for v in values {
        out.push(' ');
        let _ = write!(out, "{v}"); // writing to a String cannot fail
    }
    out.push('\n');
}

/// Serialize a profile set to a string.
pub fn to_string(set: &ProfileSet) -> String {
    let mut out = String::new();
    out.push_str("STCA-PROFILES v1\n");
    let _ = writeln!(out, "rows {}", set.len());
    for r in &set.rows {
        out.push_str("row\n");
        let _ = write!(out, "static {}", r.static_features.len());
        fmt_floats(&mut out, &r.static_features);
        let _ = write!(out, "dynamic {}", r.dynamic_features.len());
        fmt_floats(&mut out, &r.dynamic_features);
        out.push_str("targets");
        fmt_floats(
            &mut out,
            &[
                r.ea,
                r.base_service_norm,
                r.mean_response_norm,
                r.p95_response_norm,
                r.allocation_ratio,
            ],
        );
        let _ = writeln!(out, "trace {} {}", r.trace.rows(), r.trace.cols());
        for row in 0..r.trace.rows() {
            let mut line = String::new();
            fmt_floats(&mut line, r.trace.row(row));
            out.push_str(line.trim_start());
        }
    }
    out
}

/// Save a profile set to a file.
pub fn save(set: &ProfileSet, path: &Path) -> Result<(), StcaError> {
    std::fs::write(path, to_string(set)).map_err(|e| StcaError::io(path.display().to_string(), e))
}

struct Lines<'a> {
    inner: std::str::Lines<'a>,
    line_no: usize,
}

impl<'a> Lines<'a> {
    fn next(&mut self) -> Result<&'a str, StcaError> {
        self.line_no += 1;
        self.inner
            .next()
            .ok_or_else(|| format_err(format!("unexpected EOF at line {}", self.line_no)))
    }
}

fn parse_floats(s: &str, expect: Option<usize>, line_no: usize) -> Result<Vec<f64>, StcaError> {
    let vals: Result<Vec<f64>, _> = s.split_whitespace().map(|t| t.parse::<f64>()).collect();
    let vals = vals.map_err(|e| format_err(format!("bad float at line {line_no}: {e}")))?;
    if let Some(n) = expect {
        if vals.len() != n {
            return Err(format_err(format!(
                "expected {n} values at line {line_no}, got {}",
                vals.len()
            )));
        }
    }
    Ok(vals)
}

fn expect_tagged<'a>(lines: &mut Lines<'a>, tag: &str) -> Result<(&'a str, usize), StcaError> {
    let line = lines.next()?;
    let rest = line.strip_prefix(tag).ok_or_else(|| {
        format_err(format!(
            "expected '{tag}' at line {}, got {line:?}",
            lines.line_no
        ))
    })?;
    Ok((rest, lines.line_no))
}

/// Parse a profile set from a string.
pub fn from_string(text: &str) -> Result<ProfileSet, StcaError> {
    let mut lines = Lines {
        inner: text.lines(),
        line_no: 0,
    };
    let header = lines.next()?;
    if header != "STCA-PROFILES v1" {
        return Err(format_err(format!("bad header {header:?}")));
    }
    let (rest, ln) = expect_tagged(&mut lines, "rows ")?;
    let n: usize = rest
        .trim()
        .parse()
        .map_err(|e| format_err(format!("bad row count at line {ln}: {e}")))?;
    let mut set = ProfileSet::new();
    for _ in 0..n {
        let marker = lines.next()?;
        if marker != "row" {
            return Err(format_err(format!(
                "expected 'row' at line {}, got {marker:?}",
                lines.line_no
            )));
        }
        let (rest, ln) = expect_tagged(&mut lines, "static ")?;
        let mut parts = rest.split_whitespace();
        let k: usize = parts
            .next()
            .ok_or_else(|| format_err(format!("missing count at line {ln}")))?
            .parse()
            .map_err(|e| format_err(format!("bad count at line {ln}: {e}")))?;
        let static_features = parse_floats(&parts.collect::<Vec<_>>().join(" "), Some(k), ln)?;

        let (rest, ln) = expect_tagged(&mut lines, "dynamic ")?;
        let mut parts = rest.split_whitespace();
        let k: usize = parts
            .next()
            .ok_or_else(|| format_err(format!("missing count at line {ln}")))?
            .parse()
            .map_err(|e| format_err(format!("bad count at line {ln}: {e}")))?;
        let dynamic_features = parse_floats(&parts.collect::<Vec<_>>().join(" "), Some(k), ln)?;

        let (rest, ln) = expect_tagged(&mut lines, "targets")?;
        let targets = parse_floats(rest, Some(5), ln)?;

        let (rest, ln) = expect_tagged(&mut lines, "trace ")?;
        let dims = parse_floats(rest, Some(2), ln)?;
        let (rows, cols) = (dims[0] as usize, dims[1] as usize);
        let mut trace = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let line = lines.next()?;
            let vals = parse_floats(line, Some(cols), lines.line_no)?;
            trace.row_mut(r).copy_from_slice(&vals);
        }
        set.push(ProfileRow {
            static_features,
            dynamic_features,
            trace,
            ea: targets[0],
            base_service_norm: targets[1],
            mean_response_norm: targets[2],
            p95_response_norm: targets[3],
            allocation_ratio: targets[4],
        });
    }
    Ok(set)
}

/// Load a profile set from a file.
pub fn load(path: &Path) -> Result<ProfileSet, StcaError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| StcaError::io(path.display().to_string(), e))?;
    from_string(&text)
}

/// Encode a profile row as a checkpoint-safe JSON value. Floats are stored
/// as bit strings so resume reproduces the row bit-for-bit (including NaN
/// payloads, which JSON numbers cannot carry).
pub fn row_to_json(row: &ProfileRow) -> Value {
    let mut obj = BTreeMap::new();
    obj.insert("static".to_string(), f64s_to_value(&row.static_features));
    obj.insert("dynamic".to_string(), f64s_to_value(&row.dynamic_features));
    obj.insert(
        "targets".to_string(),
        f64s_to_value(&[
            row.ea,
            row.base_service_norm,
            row.mean_response_norm,
            row.p95_response_norm,
            row.allocation_ratio,
        ]),
    );
    obj.insert(
        "trace_dims".to_string(),
        Value::Array(vec![
            Value::Number(row.trace.rows() as f64),
            Value::Number(row.trace.cols() as f64),
        ]),
    );
    obj.insert("trace".to_string(), f64s_to_value(row.trace.as_slice()));
    Value::Object(obj)
}

/// Decode a profile row written by [`row_to_json`].
pub fn row_from_json(value: &Value) -> Result<ProfileRow, StcaError> {
    let field = |name: &str| -> Result<&Value, StcaError> {
        value
            .get(name)
            .ok_or_else(|| format_err(format!("checkpoint row missing field {name:?}")))
    };
    let floats = |name: &str| -> Result<Vec<f64>, StcaError> {
        value_to_f64s(field(name)?)
            .ok_or_else(|| format_err(format!("checkpoint row field {name:?} malformed")))
    };
    let static_features = floats("static")?;
    let dynamic_features = floats("dynamic")?;
    let targets = floats("targets")?;
    if targets.len() != 5 {
        return Err(format_err(format!(
            "checkpoint row has {} targets, expected 5",
            targets.len()
        )));
    }
    let dims = match field("trace_dims")? {
        Value::Array(a) if a.len() == 2 => a,
        other => {
            return Err(format_err(format!(
                "checkpoint row trace_dims malformed: {other}"
            )))
        }
    };
    let rows = dims[0]
        .as_f64()
        .ok_or_else(|| format_err("trace_dims[0] not a number"))? as usize;
    let cols = dims[1]
        .as_f64()
        .ok_or_else(|| format_err("trace_dims[1] not a number"))? as usize;
    let flat = value_to_f64s(field("trace")?)
        .ok_or_else(|| format_err("checkpoint row field \"trace\" malformed"))?;
    if flat.len() != rows * cols {
        return Err(format_err(format!(
            "checkpoint row trace has {} values for {rows}x{cols}",
            flat.len()
        )));
    }
    let mut trace = Matrix::zeros(rows, cols);
    trace.as_mut_slice().copy_from_slice(&flat);
    Ok(ProfileRow {
        static_features,
        dynamic_features,
        trace,
        ea: targets[0],
        base_service_norm: targets[1],
        mean_response_norm: targets[2],
        p95_response_norm: targets[3],
        allocation_ratio: targets[4],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> ProfileSet {
        let mut trace = Matrix::zeros(3, 4);
        for r in 0..3 {
            for c in 0..4 {
                trace[(r, c)] = (r * 4 + c) as f64 * 0.3337 + 1e-9;
            }
        }
        let mut set = ProfileSet::new();
        set.push(ProfileRow {
            static_features: vec![0.9, 1.5, 0.25, 6.0, 1.0],
            dynamic_features: vec![0.125, 2.75],
            trace,
            ea: 0.731,
            base_service_norm: 1.0625,
            mean_response_norm: 1.875,
            p95_response_norm: 3.5,
            allocation_ratio: 2.0,
        });
        set.push(ProfileRow {
            static_features: vec![0.3, 0.0, 0.5, 3.0, 2.0],
            dynamic_features: vec![0.0, 0.0],
            trace: Matrix::zeros(3, 4),
            ea: 0.5,
            base_service_norm: 1.0,
            mean_response_norm: 1.1,
            p95_response_norm: 2.2,
            allocation_ratio: 1.5,
        });
        set
    }

    #[test]
    fn roundtrip_is_exact() {
        let set = sample_set();
        let text = to_string(&set);
        let back = from_string(&text).expect("parses");
        assert_eq!(back.len(), set.len());
        for (a, b) in set.rows.iter().zip(&back.rows) {
            assert_eq!(a.static_features, b.static_features);
            assert_eq!(a.dynamic_features, b.dynamic_features);
            assert_eq!(a.trace.as_slice(), b.trace.as_slice());
            assert_eq!(a.ea, b.ea);
            assert_eq!(a.base_service_norm, b.base_service_norm);
            assert_eq!(a.mean_response_norm, b.mean_response_norm);
            assert_eq!(a.p95_response_norm, b.p95_response_norm);
            assert_eq!(a.allocation_ratio, b.allocation_ratio);
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("stca_storage_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("profiles.stca");
        let set = sample_set();
        save(&set, &path).expect("saves");
        let back = load(&path).expect("loads");
        assert_eq!(back.len(), 2);
        assert_eq!(back.rows[0].ea, 0.731);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            from_string("NOT-A-PROFILE v9\n"),
            Err(StcaError::Format { .. })
        ));
    }

    #[test]
    fn rejects_truncated_file() {
        let text = to_string(&sample_set());
        let cut = &text[..text.len() / 2];
        assert!(from_string(cut).is_err());
    }

    #[test]
    fn rejects_wrong_counts() {
        let good = to_string(&sample_set());
        let bad = good.replacen("static 5", "static 7", 1);
        assert!(from_string(&bad).is_err());
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load(Path::new("/definitely/not/here.stca")).expect_err("missing");
        assert!(matches!(err, StcaError::Io { .. }));
    }

    #[test]
    fn extreme_floats_roundtrip() {
        let mut set = ProfileSet::new();
        set.push(ProfileRow {
            static_features: vec![f64::MIN_POSITIVE, 1e300, -0.0, 1.0 / 3.0],
            dynamic_features: vec![],
            trace: Matrix::zeros(0, 0),
            ea: f64::EPSILON,
            base_service_norm: 1e-200,
            mean_response_norm: 12345.678901234567,
            p95_response_norm: 0.1 + 0.2, // the classic
            allocation_ratio: 1.0,
        });
        let back = from_string(&to_string(&set)).expect("parses");
        assert_eq!(back.rows[0].static_features, set.rows[0].static_features);
        assert_eq!(
            back.rows[0].p95_response_norm,
            set.rows[0].p95_response_norm
        );
    }

    #[test]
    fn json_row_roundtrip_is_bit_exact() {
        let set = sample_set();
        for row in &set.rows {
            let encoded = row_to_json(row);
            // force a full serialize/parse cycle like a real checkpoint file
            let text = encoded.to_string();
            let parsed = Value::parse(&text).expect("valid json");
            let back = row_from_json(&parsed).expect("decodes");
            assert_eq!(back.static_features, row.static_features);
            assert_eq!(back.trace.as_slice(), row.trace.as_slice());
            assert_eq!(back.ea.to_bits(), row.ea.to_bits());
            assert_eq!(
                back.allocation_ratio.to_bits(),
                row.allocation_ratio.to_bits()
            );
        }
    }

    #[test]
    fn json_row_rejects_malformed_values() {
        assert!(row_from_json(&Value::Null).is_err());
        let mut obj = BTreeMap::new();
        obj.insert("static".to_string(), f64s_to_value(&[1.0]));
        assert!(row_from_json(&Value::Object(obj)).is_err());
    }
}
