//! The scoped worker pool and its order-preserving map primitive.
//!
//! Scheduling is a shared-injector design: tasks live in the input slice,
//! workers claim adaptive chunks off an atomic cursor (large chunks while
//! the queue is long, single tasks near the end — the same tail behaviour
//! work-stealing deques converge to), and every result is written to the
//! slot of its input index. Output order is therefore input order, no
//! matter which worker ran what when.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Per-pool metric handles, resolved once.
struct PoolMetrics {
    par_maps: Arc<stca_obs::Counter>,
    tasks: Arc<stca_obs::Counter>,
    task_panics: Arc<stca_obs::Counter>,
    queue_depth: Arc<stca_obs::Gauge>,
    wall_seconds: Arc<stca_obs::Histogram>,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        par_maps: stca_obs::counter("exec.par_maps_total"),
        tasks: stca_obs::counter("exec.tasks_total"),
        task_panics: stca_obs::counter("exec.task_panics_total"),
        queue_depth: stca_obs::gauge("exec.queue_depth"),
        wall_seconds: stca_obs::histogram("exec.pool.wall_seconds"),
    })
}

/// Best-effort human-readable message out of a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

thread_local! {
    /// Set while this thread is a pool worker: nested parallel calls run
    /// inline so fan-out never multiplies across layers (a cascade level
    /// fitting forests in parallel must not also fan out per tree).
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Map `f` over `0..n` on the worker pool; `out[i] = f(i)`, always.
///
/// Falls back to a plain serial loop when the effective thread count is 1,
/// when there is at most one task, or when already running on a pool
/// worker — the result is identical in every case, only the wall time
/// changes. Panics in `f` propagate to the caller.
pub fn par_map_range<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let metrics = pool_metrics();
    metrics.tasks.add(n as u64);
    let workers = crate::threads().min(n);
    if workers <= 1 || IN_POOL.with(|p| p.get()) {
        return (0..n).map(f).collect();
    }
    metrics.par_maps.inc();
    let timer = stca_obs::StageTimer::with_histogram(metrics.wall_seconds.clone());
    // Mutex<Option<R>> rather than OnceLock<R>: the slot type must be Sync
    // with only R: Send, and each slot is locked exactly once, uncontended.
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let f = &f;
            let slots = &slots;
            let cursor = &cursor;
            scope.spawn(move || {
                IN_POOL.with(|p| p.set(true));
                loop {
                    // Adaptive chunk: a quarter-share of what looks left,
                    // decaying to single tasks so stragglers stay balanced.
                    let remaining = n.saturating_sub(cursor.load(Ordering::Relaxed));
                    let chunk = (remaining / (workers * 4)).clamp(1, 64);
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    pool_metrics().queue_depth.set(n.saturating_sub(end) as f64);
                    for (i, slot) in slots.iter().enumerate().take(end).skip(start) {
                        let r = f(i);
                        *slot.lock().expect("slot lock") = Some(r);
                    }
                }
            });
        }
    });
    timer.stop();
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("scope join guarantees every slot is filled")
        })
        .collect()
}

/// Map `f` over a slice on the worker pool; `out[i] = f(i, &items[i])`,
/// always — input order in, input order out. The index parameter is how
/// callers key per-task seed streams (`stream.rng(i as u64)`), keeping
/// results identical at any thread count.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_range(items.len(), |i| f(i, &items[i]))
}

/// [`par_map_range`] with panic isolation: a panicking task yields
/// `Err(panic message)` for its own slot instead of tearing down the whole
/// map, and ticks `exec.task_panics_total`. Fault-tolerant pipelines use
/// this so one poisoned experiment fails one item, not the run.
pub fn par_map_range_caught<R, F>(n: usize, f: F) -> Vec<Result<R, String>>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_range(n, |i| {
        // AssertUnwindSafe: `f` is &-called and any broken invariants die
        // with the Err slot — the value is never observed half-built.
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))) {
            Ok(r) => Ok(r),
            Err(payload) => {
                pool_metrics().task_panics.inc();
                Err(panic_message(payload))
            }
        }
    })
}

/// Run one closure with panic isolation on the current thread: a panic in
/// `f` becomes `Err(panic message)` and ticks `exec.task_panics_total`.
/// The serving loop's stage watchdog uses this to turn a panicking pipeline
/// stage into a typed failure it can retry or shed instead of unwinding the
/// whole control loop.
pub fn run_caught<R, F>(f: F) -> Result<R, String>
where
    F: FnOnce() -> R,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => Ok(r),
        Err(payload) => {
            pool_metrics().task_panics.inc();
            Err(panic_message(payload))
        }
    }
}

/// [`par_map_indexed`] with panic isolation; see [`par_map_range_caught`].
pub fn par_map_indexed_caught<T, R, F>(items: &[T], f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_range_caught(items.len(), |i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stca_util::SeedStream;

    #[test]
    fn preserves_input_order() {
        let _guard = crate::config::test_lock();
        crate::set_threads(8);
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map_indexed(&items, |i, &v| {
            assert_eq!(i, v);
            v * 3
        });
        assert_eq!(out, (0..1000).map(|v| v * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let _guard = crate::config::test_lock();
        crate::set_threads(4);
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_indexed(&empty, |_, &v| v).is_empty());
        assert_eq!(par_map_range(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn identical_results_at_any_thread_count() {
        let _guard = crate::config::test_lock();
        let run = |threads: usize| -> Vec<u64> {
            crate::set_threads(threads);
            let stream = SeedStream::new(42);
            par_map_range(64, |i| {
                let mut rng = stream.rng(i as u64);
                (0..100)
                    .map(|_| rng.next_u64())
                    .fold(0u64, u64::wrapping_add)
            })
        };
        let serial = run(1);
        for threads in [2, 5, 8] {
            assert_eq!(run(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn nested_calls_run_inline() {
        let _guard = crate::config::test_lock();
        crate::set_threads(4);
        let out = par_map_range(8, |i| {
            // inner call must not deadlock or explode the thread count
            let inner = par_map_range(8, move |j| i * 8 + j);
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn worker_panic_propagates() {
        let _guard = crate::config::test_lock();
        crate::set_threads(4);
        let result = std::panic::catch_unwind(|| {
            par_map_range(16, |i| {
                if i == 11 {
                    panic!("task 11 failed");
                }
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn caught_variant_isolates_panics() {
        let _guard = crate::config::test_lock();
        for threads in [1, 4] {
            crate::set_threads(threads);
            let before = stca_obs::counter("exec.task_panics_total").get();
            let out = par_map_range_caught(16, |i| {
                if i % 5 == 3 {
                    panic!("task {i} poisoned");
                }
                i * 2
            });
            assert_eq!(out.len(), 16);
            for (i, r) in out.iter().enumerate() {
                if i % 5 == 3 {
                    let msg = r.as_ref().expect_err("should have panicked");
                    assert!(msg.contains("poisoned"), "{msg}");
                } else {
                    assert_eq!(*r.as_ref().expect("ok"), i * 2);
                }
            }
            let after = stca_obs::counter("exec.task_panics_total").get();
            assert!(after >= before + 3, "threads={threads}");
        }
    }

    #[test]
    fn run_caught_isolates_a_single_closure() {
        assert_eq!(run_caught(|| 41 + 1), Ok(42));
        let before = stca_obs::counter("exec.task_panics_total").get();
        let err = run_caught(|| -> u32 { panic!("stage wedged") }).expect_err("panicked");
        assert!(err.contains("wedged"), "{err}");
        assert!(stca_obs::counter("exec.task_panics_total").get() > before);
    }

    #[test]
    fn counts_tasks() {
        let _guard = crate::config::test_lock();
        crate::set_threads(2);
        let before = stca_obs::counter("exec.tasks_total").get();
        par_map_range(10, |i| i);
        let after = stca_obs::counter("exec.tasks_total").get();
        assert!(after >= before + 10);
    }
}
