//! Worker-thread count resolution: CLI override > `STCA_THREADS` > cores.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Hard cap on the worker count; tasks in this workspace are coarse
/// (whole experiments, whole forests), so more threads than this only add
/// scheduling noise.
const MAX_THREADS: usize = 256;

/// Process-wide override installed by [`set_threads`]; 0 = unset.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cached handle: [`threads`] runs once per `par_map`, so it must not pay
/// a registry name lookup every call.
fn threads_gauge() -> &'static Arc<stca_obs::Gauge> {
    static GAUGE: OnceLock<Arc<stca_obs::Gauge>> = OnceLock::new();
    GAUGE.get_or_init(|| stca_obs::gauge("exec.threads"))
}

/// Parsed `STCA_THREADS`, read once.
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let raw = std::env::var("STCA_THREADS").ok()?;
        match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Some(n.min(MAX_THREADS)),
            _ => {
                stca_obs::warn!("ignoring invalid STCA_THREADS={raw:?} (want a positive integer)");
                None
            }
        }
    })
}

fn default_threads() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_THREADS)
    })
}

/// Install a process-wide worker-count override (the `--threads` flag).
/// May be called repeatedly; the latest value wins. Values are clamped to
/// `1..=256`.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
    threads_gauge().set(threads() as f64);
}

/// The effective worker count: [`set_threads`] override, else
/// `STCA_THREADS`, else [`std::thread::available_parallelism`]. Also keeps
/// the `exec.threads` gauge current so `--metrics-out` reports record the
/// parallelism a run actually used.
pub fn threads() -> usize {
    let n = match OVERRIDE.load(Ordering::Relaxed) {
        0 => env_threads().unwrap_or_else(default_threads),
        n => n,
    };
    threads_gauge().set(n as f64);
    n
}

/// Scan an argv-style list for `--threads N` (or `--threads=N`).
pub fn threads_from_args<S: AsRef<str>>(args: &[S]) -> Option<usize> {
    let mut iter = args.iter().map(|s| s.as_ref());
    while let Some(arg) = iter.next() {
        let value = if arg == "--threads" {
            iter.next()
        } else {
            arg.strip_prefix("--threads=")
        };
        if let Some(v) = value {
            return match v.parse::<usize>() {
                Ok(n) if n >= 1 => Some(n),
                _ => {
                    stca_obs::warn!("ignoring invalid --threads {v:?} (want a positive integer)");
                    None
                }
            };
        }
    }
    None
}

/// Binary entry-point hook: honor `--threads N` from the process arguments
/// (falling back to `STCA_THREADS` / core count) and record the effective
/// count in the `exec.threads` gauge.
pub fn init_from_env_and_args() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(n) = threads_from_args(&args) {
        set_threads(n);
    }
    stca_obs::debug!("exec: {} worker threads", threads());
}

/// Serializes tests that touch the process-global [`OVERRIDE`].
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_threads_flag() {
        assert_eq!(threads_from_args(&["--scale", "quick"]), None);
        assert_eq!(threads_from_args(&["--threads", "4"]), Some(4));
        assert_eq!(threads_from_args(&["--threads=12"]), Some(12));
        assert_eq!(threads_from_args(&["--threads", "zero"]), None);
        assert_eq!(threads_from_args(&["--threads", "0"]), None);
        assert_eq!(threads_from_args(&["--threads"]), None);
    }

    #[test]
    fn override_wins_and_clamps() {
        let _guard = test_lock();
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert_eq!(threads(), 1, "clamped up");
        set_threads(100_000);
        assert_eq!(threads(), 256, "clamped down");
        // leave a sane value for other tests in this process
        set_threads(2);
    }
}
