//! # stca-exec
//!
//! Deterministic parallel execution for the STCA pipeline — `std` only.
//!
//! Every compute-heavy stage of the reproduction is embarrassingly parallel:
//! profiling experiments (Stage 1), per-tree / per-level / per-window forest
//! training (Stage 2), queueing replications (Stage 3), and the timeout-grid
//! policy search. This crate is the single place that schedules threads for
//! all of them, built around one primitive:
//!
//! * [`par_map_indexed`] / [`par_map_range`] — run a function over every
//!   index of a slice (or range) on a scoped worker pool and return the
//!   results **in input order**. Workers claim adaptive chunks from a shared
//!   injector, so load balances like a work-stealing pool, but the output
//!   is position-keyed and therefore independent of scheduling.
//!
//! Determinism is a contract shared with callers: tasks must not share
//! mutable state, and any randomness must come from a tagged stream
//! ([`stca_util::SeedStream`] / [`Rng64::derive_stream`]) keyed by the task
//! index — never from a generator threaded mutably across tasks. Under that
//! discipline the same seed produces bit-identical results at *any* thread
//! count, which `tests/determinism.rs` at the workspace root enforces.
//!
//! The worker count resolves, in order: a process-wide [`set_threads`]
//! override (the `--threads` CLI flag), the `STCA_THREADS` environment
//! variable, then [`std::thread::available_parallelism`]. Nested calls run
//! inline on the already-parallel worker — fan-out never multiplies.
//!
//! Instrumented with stca-obs: `exec.threads` gauge, `exec.tasks_total` and
//! `exec.par_maps_total` counters, `exec.queue_depth` gauge, and an
//! `exec.pool.wall_seconds` histogram per parallel region.
//!
//! [`Rng64::derive_stream`]: stca_util::Rng64::derive_stream

mod config;
mod pool;

pub use config::{init_from_env_and_args, set_threads, threads, threads_from_args};
pub use pool::{
    par_map_indexed, par_map_indexed_caught, par_map_range, par_map_range_caught, run_caught,
};
