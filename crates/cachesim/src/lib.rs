//! # stca-cachesim
//!
//! A multi-level set-associative cache simulator implementing the Figure-1
//! data path of the paper: address split into tag/set/offset, way lookup, and
//! CAT-style *write-enable* logic where a workload's fill victims are
//! restricted to the ways its class of service allows, while **hits are
//! allowed in any way** (matching Intel CAT semantics — a resident line hits
//! even if it sits outside the current mask).
//!
//! The simulator substitutes for the paper's Xeon testbed (see DESIGN.md):
//! collocated workloads drive real memory-access streams through private
//! L1d/L1i/L2 caches and a shared, way-partitioned LLC, producing
//!
//! * per-workload **hardware counters** (the 29 cache-usage counters the
//!   paper samples, [`counters::Counter`]),
//! * non-linear **ways → miss-rate** curves that emerge from replacement and
//!   occupancy dynamics rather than from a fitted formula, and
//! * **contention**: a boosted workload filling shared ways evicts its
//!   neighbour's lines, which is precisely the recurring-slowdown effect the
//!   paper's models must capture.
//!
//! Geometry can be scaled down (same way count, fewer sets) so experiments
//! run quickly; miss-rate-vs-ways behaviour depends on footprint relative to
//! way capacity, which scaling preserves when workload footprints are scaled
//! alongside (the workload crate does this).

#![warn(clippy::unwrap_used)]

pub mod address;
pub mod cache;
pub mod config;
pub mod counters;
pub mod hierarchy;
pub mod replacement;

pub use address::{AccessKind, Address};
pub use cache::{AccessOutcome, CacheLevel};
pub use config::{CacheGeometry, HierarchyConfig, Latencies};
pub use counters::{Counter, CounterSet, COUNTER_COUNT};
pub use hierarchy::{Hierarchy, LevelHit, MaskMode};

/// Identifier of a workload driving accesses (matches `stca_cat::cos::WorkloadId`).
pub type WorkloadId = u32;
