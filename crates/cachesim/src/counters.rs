//! The 29 cache-usage performance counters.
//!
//! §5 of the paper: *"We sampled L1 data cache stores and misses; L1
//! instruction cache stores and misses; L2 requests, stores and misses; LLC
//! loads, misses, stores; and other architectural counters related to cache
//! usage (29 in total)."* This module fixes a concrete set of 29 counters
//! with the same structure, organized into **groups** — the spatial ordering
//! that Figure 7c shows matters for multi-grain scanning (grouped counters
//! vs randomly shuffled ones).

use crate::WorkloadId;

/// Number of tracked counters.
pub const COUNTER_COUNT: usize = 29;

/// Architectural counters sampled per workload during query execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Retired instructions (reported by the workload model).
    Instructions = 0,
    /// Elapsed core cycles charged to the workload.
    Cycles = 1,
    /// L1 data-cache load accesses.
    L1dLoads = 2,
    /// L1 data-cache load misses.
    L1dLoadMisses = 3,
    /// L1 data-cache store accesses.
    L1dStores = 4,
    /// L1 data-cache store misses.
    L1dStoreMisses = 5,
    /// Lines evicted from L1d.
    L1dEvictions = 6,
    /// L1 instruction-cache fetches.
    L1iFetches = 7,
    /// L1 instruction-cache fetch misses.
    L1iFetchMisses = 8,
    /// All requests arriving at L2.
    L2Requests = 9,
    /// L2 load accesses.
    L2Loads = 10,
    /// L2 load misses.
    L2LoadMisses = 11,
    /// L2 store accesses.
    L2Stores = 12,
    /// L2 store misses.
    L2StoreMisses = 13,
    /// Lines evicted from L2.
    L2Evictions = 14,
    /// LLC load accesses.
    LlcLoads = 15,
    /// LLC load misses.
    LlcLoadMisses = 16,
    /// LLC store accesses.
    LlcStores = 17,
    /// LLC store misses.
    LlcStoreMisses = 18,
    /// All LLC accesses (loads + stores + code).
    LlcAccesses = 19,
    /// All LLC misses.
    LlcMisses = 20,
    /// Lines filled into the LLC on behalf of this workload.
    LlcFills = 21,
    /// Fills by this workload that evicted another workload's line.
    LlcEvictionsCaused = 22,
    /// This workload's lines evicted by other workloads' fills.
    LlcEvictionsSuffered = 23,
    /// Current LLC lines owned (occupancy, like Intel CMT), sampled.
    LlcOccupancyLines = 24,
    /// LLC hits on lines resident in ways outside the current fill mask —
    /// the CAT "hit anywhere" effect.
    LlcForeignWayHits = 25,
    /// Reads served from memory.
    MemReads = 26,
    /// Writebacks to memory (dirty evictions).
    MemWrites = 27,
    /// 1 while a short-term allocation boost is active, else 0 (sampled).
    BoostActive = 28,
}

impl Counter {
    /// All counters in canonical (grouped) order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::Instructions,
        Counter::Cycles,
        Counter::L1dLoads,
        Counter::L1dLoadMisses,
        Counter::L1dStores,
        Counter::L1dStoreMisses,
        Counter::L1dEvictions,
        Counter::L1iFetches,
        Counter::L1iFetchMisses,
        Counter::L2Requests,
        Counter::L2Loads,
        Counter::L2LoadMisses,
        Counter::L2Stores,
        Counter::L2StoreMisses,
        Counter::L2Evictions,
        Counter::LlcLoads,
        Counter::LlcLoadMisses,
        Counter::LlcStores,
        Counter::LlcStoreMisses,
        Counter::LlcAccesses,
        Counter::LlcMisses,
        Counter::LlcFills,
        Counter::LlcEvictionsCaused,
        Counter::LlcEvictionsSuffered,
        Counter::LlcOccupancyLines,
        Counter::LlcForeignWayHits,
        Counter::MemReads,
        Counter::MemWrites,
        Counter::BoostActive,
    ];

    /// Counter name as it would appear in a perf event list.
    pub fn name(&self) -> &'static str {
        match self {
            Counter::Instructions => "inst_retired",
            Counter::Cycles => "cpu_clk_unhalted",
            Counter::L1dLoads => "l1d.loads",
            Counter::L1dLoadMisses => "l1d.load_misses",
            Counter::L1dStores => "l1d.stores",
            Counter::L1dStoreMisses => "l1d.store_misses",
            Counter::L1dEvictions => "l1d.evictions",
            Counter::L1iFetches => "l1i.fetches",
            Counter::L1iFetchMisses => "l1i.fetch_misses",
            Counter::L2Requests => "l2.requests",
            Counter::L2Loads => "l2.loads",
            Counter::L2LoadMisses => "l2.load_misses",
            Counter::L2Stores => "l2.stores",
            Counter::L2StoreMisses => "l2.store_misses",
            Counter::L2Evictions => "l2.evictions",
            Counter::LlcLoads => "llc.loads",
            Counter::LlcLoadMisses => "llc.load_misses",
            Counter::LlcStores => "llc.stores",
            Counter::LlcStoreMisses => "llc.store_misses",
            Counter::LlcAccesses => "llc.accesses",
            Counter::LlcMisses => "llc.misses",
            Counter::LlcFills => "llc.fills",
            Counter::LlcEvictionsCaused => "llc.evictions_caused",
            Counter::LlcEvictionsSuffered => "llc.evictions_suffered",
            Counter::LlcOccupancyLines => "llc.occupancy",
            Counter::LlcForeignWayHits => "llc.foreign_way_hits",
            Counter::MemReads => "mem.reads",
            Counter::MemWrites => "mem.writes",
            Counter::BoostActive => "stap.boost_active",
        }
    }

    /// Spatial group the counter belongs to (Figure 7c orders counters by
    /// these groups so multi-grain scanning sees correlated events close
    /// together).
    pub fn group(&self) -> CounterGroup {
        use Counter::*;
        match self {
            Instructions | Cycles => CounterGroup::Core,
            L1dLoads | L1dLoadMisses | L1dStores | L1dStoreMisses | L1dEvictions => {
                CounterGroup::L1d
            }
            L1iFetches | L1iFetchMisses => CounterGroup::L1i,
            L2Requests | L2Loads | L2LoadMisses | L2Stores | L2StoreMisses | L2Evictions => {
                CounterGroup::L2
            }
            LlcLoads | LlcLoadMisses | LlcStores | LlcStoreMisses | LlcAccesses | LlcMisses
            | LlcFills | LlcEvictionsCaused | LlcEvictionsSuffered | LlcOccupancyLines
            | LlcForeignWayHits => CounterGroup::Llc,
            MemReads | MemWrites => CounterGroup::Memory,
            BoostActive => CounterGroup::Policy,
        }
    }
}

/// Spatial grouping for counter ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterGroup {
    /// Instruction/cycle counters.
    Core,
    /// L1 data cache.
    L1d,
    /// L1 instruction cache.
    L1i,
    /// Unified L2.
    L2,
    /// Shared last-level cache.
    Llc,
    /// Memory controller.
    Memory,
    /// Short-term allocation state.
    Policy,
}

/// A dense bank of the 29 counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSet {
    values: [u64; COUNTER_COUNT],
}

impl Default for CounterSet {
    fn default() -> Self {
        CounterSet::new()
    }
}

impl CounterSet {
    /// All-zero counters.
    pub fn new() -> Self {
        CounterSet {
            values: [0; COUNTER_COUNT],
        }
    }

    /// Read one counter.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.values[c as usize]
    }

    /// Increment one counter by `n`.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.values[c as usize] += n;
    }

    /// Increment one counter by 1.
    #[inline]
    pub fn bump(&mut self, c: Counter) {
        self.values[c as usize] += 1;
    }

    /// Overwrite a level-style counter (used for sampled gauges like
    /// occupancy and boost state).
    #[inline]
    pub fn set(&mut self, c: Counter, v: u64) {
        self.values[c as usize] = v;
    }

    /// Counter-wise difference `self - earlier` (saturating, so gauge
    /// counters that decreased clamp at zero).
    pub fn delta(&self, earlier: &CounterSet) -> CounterSet {
        let mut out = CounterSet::new();
        for i in 0..COUNTER_COUNT {
            out.values[i] = self.values[i].saturating_sub(earlier.values[i]);
        }
        out
    }

    /// Counter-wise sum.
    pub fn merge(&mut self, other: &CounterSet) {
        for i in 0..COUNTER_COUNT {
            self.values[i] += other.values[i];
        }
    }

    /// Values in canonical order as f64 (feature-vector form).
    pub fn to_features(&self) -> [f64; COUNTER_COUNT] {
        let mut out = [0.0; COUNTER_COUNT];
        for (o, v) in out.iter_mut().zip(&self.values) {
            *o = *v as f64;
        }
        out
    }

    /// LLC miss ratio (misses / accesses), 0 when idle.
    pub fn llc_miss_ratio(&self) -> f64 {
        let acc = self.get(Counter::LlcAccesses);
        if acc == 0 {
            0.0
        } else {
            self.get(Counter::LlcMisses) as f64 / acc as f64
        }
    }

    /// Instructions per cycle, 0 when idle. Used by the dynaSprint baseline.
    pub fn ipc(&self) -> f64 {
        let cyc = self.get(Counter::Cycles);
        if cyc == 0 {
            0.0
        } else {
            self.get(Counter::Instructions) as f64 / cyc as f64
        }
    }
}

/// Per-workload counter banks. Workload ids index a dense vector — they are
/// small integers assigned by the experiment driver — keeping the per-access
/// hot path free of hashing.
#[derive(Debug, Clone, Default)]
pub struct CounterBank {
    banks: Vec<CounterSet>,
    touched: Vec<bool>,
}

impl CounterBank {
    /// Empty bank.
    pub fn new() -> Self {
        CounterBank::default()
    }

    /// Mutable counters of a workload (created on first touch).
    #[inline]
    pub fn of_mut(&mut self, w: WorkloadId) -> &mut CounterSet {
        let idx = w as usize;
        if idx >= self.banks.len() {
            self.banks.resize(idx + 1, CounterSet::new());
            self.touched.resize(idx + 1, false);
        }
        self.touched[idx] = true;
        &mut self.banks[idx]
    }

    /// Read a workload's counters (zeros if never touched).
    pub fn of(&self, w: WorkloadId) -> CounterSet {
        self.banks.get(w as usize).copied().unwrap_or_default()
    }

    /// Workloads with any recorded activity.
    pub fn workloads(&self) -> Vec<WorkloadId> {
        self.touched
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t)
            .map(|(i, _)| i as WorkloadId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_29_counters() {
        assert_eq!(Counter::ALL.len(), 29);
        // indices are dense and match positions
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COUNTER_COUNT);
    }

    #[test]
    fn groups_partition_counters() {
        use CounterGroup::*;
        let count = |g: CounterGroup| Counter::ALL.iter().filter(|c| c.group() == g).count();
        assert_eq!(count(Core), 2);
        assert_eq!(count(L1d), 5);
        assert_eq!(count(L1i), 2);
        assert_eq!(count(L2), 6);
        assert_eq!(count(Llc), 11);
        assert_eq!(count(Memory), 2);
        assert_eq!(count(Policy), 1);
    }

    #[test]
    fn add_get_delta() {
        let mut a = CounterSet::new();
        a.add(Counter::LlcMisses, 10);
        a.bump(Counter::LlcMisses);
        let snap = a;
        a.add(Counter::LlcMisses, 5);
        assert_eq!(a.get(Counter::LlcMisses), 16);
        assert_eq!(a.delta(&snap).get(Counter::LlcMisses), 5);
    }

    #[test]
    fn delta_saturates_on_gauges() {
        let mut early = CounterSet::new();
        early.set(Counter::LlcOccupancyLines, 100);
        let mut late = CounterSet::new();
        late.set(Counter::LlcOccupancyLines, 40);
        assert_eq!(late.delta(&early).get(Counter::LlcOccupancyLines), 0);
    }

    #[test]
    fn ratios() {
        let mut c = CounterSet::new();
        assert_eq!(c.llc_miss_ratio(), 0.0);
        assert_eq!(c.ipc(), 0.0);
        c.add(Counter::LlcAccesses, 100);
        c.add(Counter::LlcMisses, 25);
        c.add(Counter::Instructions, 300);
        c.add(Counter::Cycles, 150);
        assert!((c.llc_miss_ratio() - 0.25).abs() < 1e-12);
        assert!((c.ipc() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bank_isolates_workloads() {
        let mut b = CounterBank::new();
        b.of_mut(1).bump(Counter::L1dLoads);
        b.of_mut(2).add(Counter::L1dLoads, 5);
        assert_eq!(b.of(1).get(Counter::L1dLoads), 1);
        assert_eq!(b.of(2).get(Counter::L1dLoads), 5);
        assert_eq!(b.of(3).get(Counter::L1dLoads), 0);
        assert_eq!(b.workloads(), vec![1, 2]);
    }

    #[test]
    fn merge_sums() {
        let mut a = CounterSet::new();
        a.add(Counter::MemReads, 3);
        let mut b = CounterSet::new();
        b.add(Counter::MemReads, 4);
        a.merge(&b);
        assert_eq!(a.get(Counter::MemReads), 7);
    }
}
