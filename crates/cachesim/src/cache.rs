//! A single set-associative cache level with mask-constrained fills.
//!
//! Implements the Figure-1 data path: the address is split into tag/set, the
//! set's ways are searched for a tag match (hit), and on a miss the fill
//! victim is chosen **only among the ways enabled for the filling workload**
//! (CAT's write-enable logic). Hits are never blocked by the mask — a line
//! that survived a mask shrink still hits, which is why occupancy drains
//! gradually rather than instantly when a boost is revoked (the effect the
//! paper's short-term allocation exploits).

use crate::address::{Address, AddressMapper};
use crate::config::CacheGeometry;
use crate::replacement::{Replacement, ReplacementKind};
use crate::WorkloadId;
use stca_util::Rng64;
use std::collections::HashMap;

/// Result of a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Tag matched in `way`. `foreign_way` is set when the hit way lies
    /// outside the accessing workload's current fill mask.
    Hit {
        /// Way the line was found in.
        way: usize,
        /// Hit outside the current fill mask (CAT "hit anywhere").
        foreign_way: bool,
    },
    /// No way held the tag.
    Miss,
}

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Workload that owned the evicted line.
    pub owner: WorkloadId,
    /// Whether the line was dirty (writeback required).
    pub dirty: bool,
    /// Byte address (line-aligned) of the evicted line.
    pub addr: Address,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    owner: WorkloadId,
    valid: bool,
    dirty: bool,
}

const INVALID_LINE: Line = Line {
    tag: 0,
    owner: 0,
    valid: false,
    dirty: false,
};

/// One cache level.
#[derive(Debug)]
pub struct CacheLevel {
    geometry: CacheGeometry,
    mapper: AddressMapper,
    lines: Vec<Line>,       // sets * ways, row-major by set
    repl: Vec<Replacement>, // per set
    valid_bits: Vec<u64>,   // per set, bit i = way i valid
    tick: u64,
    occupancy: HashMap<WorkloadId, u64>,
    rng: Rng64,
}

impl CacheLevel {
    /// Build an empty cache level.
    pub fn new(geometry: CacheGeometry, kind: ReplacementKind, seed: u64) -> Self {
        let sets = geometry.sets();
        let ways = geometry.ways;
        assert!(ways <= 64, "way mask is a u64");
        CacheLevel {
            geometry,
            mapper: AddressMapper::new(geometry.line_size, sets),
            lines: vec![INVALID_LINE; sets * ways],
            repl: (0..sets).map(|_| Replacement::new(kind, ways)).collect(),
            valid_bits: vec![0; sets],
            tick: 0,
            occupancy: HashMap::new(),
            rng: Rng64::new(seed),
        }
    }

    /// Geometry this level was built with.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Look up `addr` for `workload`; updates recency on hit. `fill_mask`
    /// is only used to classify foreign-way hits.
    pub fn lookup(&mut self, addr: Address, fill_mask: u64) -> AccessOutcome {
        let set = self.mapper.set(addr);
        let tag = self.mapper.tag(addr);
        let ways = self.geometry.ways;
        let base = set * ways;
        self.tick += 1;
        for w in 0..ways {
            let line = &self.lines[base + w];
            if line.valid && line.tag == tag {
                self.repl[set].touch(w, self.tick);
                return AccessOutcome::Hit {
                    way: w,
                    foreign_way: (fill_mask >> w) & 1 == 0,
                };
            }
        }
        AccessOutcome::Miss
    }

    /// Mark the line holding `addr` dirty, if present. Returns whether the
    /// line was found.
    pub fn mark_dirty(&mut self, addr: Address) -> bool {
        let set = self.mapper.set(addr);
        let tag = self.mapper.tag(addr);
        let ways = self.geometry.ways;
        let base = set * ways;
        for w in 0..ways {
            let line = &mut self.lines[base + w];
            if line.valid && line.tag == tag {
                line.dirty = true;
                return true;
            }
        }
        false
    }

    /// Install `addr` for `owner`, choosing a victim among `fill_mask` ways.
    /// Returns the evicted line, if a valid line was displaced, or `None`
    /// for fills into empty ways. Returns `Err(())` when the mask allows no
    /// way in this cache (the line simply is not cached — CAT cannot block
    /// the access itself).
    #[allow(clippy::result_unit_err)]
    pub fn fill(
        &mut self,
        addr: Address,
        owner: WorkloadId,
        fill_mask: u64,
        dirty: bool,
    ) -> Result<Option<Evicted>, ()> {
        let set = self.mapper.set(addr);
        let tag = self.mapper.tag(addr);
        let ways = self.geometry.ways;
        let base = set * ways;
        self.tick += 1;
        let victim_way = self.repl[set]
            .victim(fill_mask, self.valid_bits[set], ways, &mut self.rng)
            .ok_or(())?;
        let slot = &mut self.lines[base + victim_way];
        let evicted = if slot.valid {
            let ev = Evicted {
                owner: slot.owner,
                dirty: slot.dirty,
                addr: self.mapper.compose(slot.tag, set),
            };
            *self.occupancy.entry(slot.owner).or_insert(0) = self
                .occupancy
                .get(&slot.owner)
                .copied()
                .unwrap_or(0)
                .saturating_sub(1);
            Some(ev)
        } else {
            None
        };
        *slot = Line {
            tag,
            owner,
            valid: true,
            dirty,
        };
        self.valid_bits[set] |= 1 << victim_way;
        *self.occupancy.entry(owner).or_insert(0) += 1;
        self.repl[set].touch(victim_way, self.tick);
        Ok(evicted)
    }

    /// Invalidate the line holding `addr`, if present. Returns whether a
    /// line was dropped (its dirty state is discarded — callers model the
    /// writeback themselves when needed).
    pub fn invalidate(&mut self, addr: Address) -> bool {
        let set = self.mapper.set(addr);
        let tag = self.mapper.tag(addr);
        let ways = self.geometry.ways;
        let base = set * ways;
        for w in 0..ways {
            let line = &mut self.lines[base + w];
            if line.valid && line.tag == tag {
                line.valid = false;
                let owner = line.owner;
                self.valid_bits[set] &= !(1 << w);
                *self.occupancy.entry(owner).or_insert(0) = self
                    .occupancy
                    .get(&owner)
                    .copied()
                    .unwrap_or(0)
                    .saturating_sub(1);
                return true;
            }
        }
        false
    }

    /// Lines currently owned by `workload`.
    pub fn occupancy_of(&self, workload: WorkloadId) -> u64 {
        self.occupancy.get(&workload).copied().unwrap_or(0)
    }

    /// Total valid lines.
    pub fn total_occupancy(&self) -> u64 {
        self.valid_bits.iter().map(|v| v.count_ones() as u64).sum()
    }

    /// Invalidate every line owned by `workload` (container teardown).
    pub fn flush_workload(&mut self, workload: WorkloadId) {
        let ways = self.geometry.ways;
        for set in 0..self.geometry.sets() {
            for w in 0..ways {
                let line = &mut self.lines[set * ways + w];
                if line.valid && line.owner == workload {
                    line.valid = false;
                    self.valid_bits[set] &= !(1 << w);
                }
            }
        }
        self.occupancy.insert(workload, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> CacheLevel {
        // 4 sets x 4 ways x 64B lines = 1 KB
        CacheLevel::new(CacheGeometry::new(1024, 4, 64), ReplacementKind::Lru, 1)
    }

    const FULL: u64 = 0b1111;

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache();
        assert_eq!(c.lookup(0x100, FULL), AccessOutcome::Miss);
        c.fill(0x100, 1, FULL, false).expect("mask nonempty");
        assert!(matches!(c.lookup(0x100, FULL), AccessOutcome::Hit { .. }));
        // same line, different offset still hits
        assert!(matches!(c.lookup(0x13F, FULL), AccessOutcome::Hit { .. }));
        // next line misses
        assert_eq!(c.lookup(0x140, FULL), AccessOutcome::Miss);
    }

    #[test]
    fn conflict_eviction_after_ways_exhausted() {
        let mut c = small_cache();
        // 5 lines mapping to set 0 (stride = sets*line = 256B)
        for i in 0..5u64 {
            c.fill(i * 256, 1, FULL, false).expect("ok");
        }
        // first line evicted (LRU), last four resident
        assert_eq!(c.lookup(0, FULL), AccessOutcome::Miss);
        for i in 1..5u64 {
            assert!(
                matches!(c.lookup(i * 256, FULL), AccessOutcome::Hit { .. }),
                "line {i}"
            );
        }
    }

    #[test]
    fn fill_respects_mask_and_reports_eviction() {
        let mut c = small_cache();
        // fill all 4 ways of set 0 as workload 1
        for i in 0..4u64 {
            assert_eq!(c.fill(i * 256, 1, FULL, false).expect("ok"), None);
        }
        // workload 2 restricted to ways 0-1 must evict workload 1
        let ev = c
            .fill(100 * 256, 2, 0b0011, false)
            .expect("ok")
            .expect("evicts");
        assert_eq!(ev.owner, 1);
        assert_eq!(c.occupancy_of(2), 1);
        assert_eq!(c.occupancy_of(1), 3);
    }

    #[test]
    fn empty_mask_fill_fails_but_lookup_still_works() {
        let mut c = small_cache();
        c.fill(0, 1, FULL, false).expect("ok");
        assert!(c.fill(256, 2, 0, false).is_err());
        assert!(matches!(c.lookup(0, FULL), AccessOutcome::Hit { .. }));
    }

    #[test]
    fn foreign_way_hit_detected() {
        let mut c = small_cache();
        // fill with full mask; line may land in any way (way 0 first)
        c.fill(0, 1, FULL, false).expect("ok");
        // lookup with a mask excluding way 0 -> foreign hit
        match c.lookup(0, 0b1110) {
            AccessOutcome::Hit { way, foreign_way } => {
                assert_eq!(way, 0);
                assert!(foreign_way);
            }
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn dirty_eviction_propagates() {
        let mut c = small_cache();
        c.fill(0, 1, 0b0001, true).expect("ok");
        let ev = c
            .fill(256, 1, 0b0001, false)
            .expect("ok")
            .expect("evicts way 0");
        assert!(ev.dirty);
        assert_eq!(ev.addr, 0);
    }

    #[test]
    fn mark_dirty_only_when_present() {
        let mut c = small_cache();
        assert!(!c.mark_dirty(0x40));
        c.fill(0x40, 1, FULL, false).expect("ok");
        assert!(c.mark_dirty(0x40));
        // eviction of that line reports dirty
        for i in 1..=4u64 {
            c.fill(0x40 + i * 256, 1, FULL, false).expect("ok");
        }
        assert_eq!(c.lookup(0x40, FULL), AccessOutcome::Miss);
    }

    #[test]
    fn invalidate_drops_line_and_occupancy() {
        let mut c = small_cache();
        c.fill(0x80, 3, FULL, true).expect("ok");
        assert_eq!(c.occupancy_of(3), 1);
        assert!(c.invalidate(0x80));
        assert!(!c.invalidate(0x80), "second invalidate is a no-op");
        assert_eq!(c.occupancy_of(3), 0);
        assert_eq!(c.lookup(0x80, FULL), AccessOutcome::Miss);
    }

    #[test]
    fn occupancy_tracks_fills_and_evictions() {
        let mut c = small_cache();
        for i in 0..8u64 {
            c.fill(i * 64, 1, FULL, false).expect("ok");
        }
        assert_eq!(c.occupancy_of(1), 8);
        assert_eq!(c.total_occupancy(), 8);
        c.flush_workload(1);
        assert_eq!(c.occupancy_of(1), 0);
        assert_eq!(c.total_occupancy(), 0);
        assert_eq!(c.lookup(0, FULL), AccessOutcome::Miss);
    }

    #[test]
    fn masked_occupancy_converges_to_mask_size() {
        // a workload restricted to 2 ways in every set can own at most
        // 2 * sets lines no matter how much it touches
        let mut c = small_cache();
        let mut rng = Rng64::new(99);
        for _ in 0..10_000 {
            let addr = (rng.next_below(64)) * 64; // 64 distinct lines, 4 sets
            if let AccessOutcome::Miss = c.lookup(addr, 0b0011) {
                c.fill(addr, 7, 0b0011, false).expect("ok");
            }
        }
        assert!(c.occupancy_of(7) <= 2 * 4);
    }
}
