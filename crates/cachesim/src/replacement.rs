//! Replacement policies with mask-constrained victim selection.
//!
//! CAT interposes on victim selection: a fill may only evict from the ways
//! enabled in the workload's capacity bitmask (Figure 1's write-enable
//! logic). Each policy therefore selects victims *within an allowed-way
//! mask*. Three policies are provided: true LRU (default; per-way
//! timestamps), tree-PLRU (what real LLCs approximate), and random
//! (baseline for ablations).

use stca_util::Rng64;

/// Pluggable per-set replacement state.
#[derive(Debug, Clone)]
pub enum Replacement {
    /// True least-recently-used via per-way timestamps.
    Lru(LruState),
    /// Tree pseudo-LRU (binary decision tree over ways).
    TreePlru(PlruState),
    /// Uniform random among allowed ways.
    Random,
}

/// Which replacement policy to instantiate for a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementKind {
    /// True LRU.
    Lru,
    /// Tree pseudo-LRU.
    TreePlru,
    /// Random victim.
    Random,
}

impl Replacement {
    /// Fresh state for a set with `ways` ways.
    pub fn new(kind: ReplacementKind, ways: usize) -> Self {
        match kind {
            ReplacementKind::Lru => Replacement::Lru(LruState::new(ways)),
            ReplacementKind::TreePlru => Replacement::TreePlru(PlruState::new(ways)),
            ReplacementKind::Random => Replacement::Random,
        }
    }

    /// Record a touch (hit or fill) of `way`.
    #[inline]
    pub fn touch(&mut self, way: usize, tick: u64) {
        match self {
            Replacement::Lru(s) => s.touch(way, tick),
            Replacement::TreePlru(s) => s.touch(way),
            Replacement::Random => {}
        }
    }

    /// Pick a victim among ways enabled in `allowed` (bit i = way i usable).
    /// `valid` marks ways currently holding valid lines; invalid allowed
    /// ways are preferred. Returns `None` when `allowed` has no bits for
    /// this set width (an empty-mask workload cannot fill).
    pub fn victim(
        &mut self,
        allowed: u64,
        valid: u64,
        ways: usize,
        rng: &mut Rng64,
    ) -> Option<usize> {
        let way_mask = if ways == 64 {
            u64::MAX
        } else {
            (1u64 << ways) - 1
        };
        let allowed = allowed & way_mask;
        if allowed == 0 {
            return None;
        }
        // Prefer an invalid allowed way (no eviction needed).
        let empty = allowed & !valid;
        if empty != 0 {
            return Some(empty.trailing_zeros() as usize);
        }
        match self {
            Replacement::Lru(s) => s.victim(allowed),
            Replacement::TreePlru(s) => s.victim(allowed),
            Replacement::Random => {
                let n = allowed.count_ones() as u64;
                let pick = rng.next_below(n);
                let mut seen = 0;
                for w in 0..ways {
                    if (allowed >> w) & 1 == 1 {
                        if seen == pick {
                            return Some(w);
                        }
                        seen += 1;
                    }
                }
                unreachable!("popcount accounting")
            }
        }
    }
}

/// True-LRU state: last-touch tick per way.
#[derive(Debug, Clone)]
pub struct LruState {
    last_touch: Vec<u64>,
}

impl LruState {
    fn new(ways: usize) -> Self {
        LruState {
            last_touch: vec![0; ways],
        }
    }

    #[inline]
    fn touch(&mut self, way: usize, tick: u64) {
        self.last_touch[way] = tick;
    }

    fn victim(&self, allowed: u64) -> Option<usize> {
        let mut best: Option<(usize, u64)> = None;
        for (w, &t) in self.last_touch.iter().enumerate() {
            if (allowed >> w) & 1 == 1 {
                match best {
                    Some((_, bt)) if bt <= t => {}
                    _ => best = Some((w, t)),
                }
            }
        }
        best.map(|(w, _)| w)
    }
}

/// Tree-PLRU over the next power of two of the way count; out-of-range
/// leaves are never proposed because victim selection re-walks with the
/// allowed mask.
#[derive(Debug, Clone)]
pub struct PlruState {
    /// One bit per internal node; bit = which half was touched least
    /// recently (0 = left is colder).
    bits: u64,
    leaves: usize,
}

impl PlruState {
    fn new(ways: usize) -> Self {
        PlruState {
            bits: 0,
            leaves: ways.next_power_of_two(),
        }
    }

    fn touch(&mut self, way: usize) {
        // Walk root->leaf, pointing each node *away* from the touched way.
        let mut node = 1usize; // 1-based heap index
        let mut lo = 0usize;
        let mut hi = self.leaves;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                // touched left: mark right as colder (bit=1 means right colder)
                self.bits |= 1 << node;
                hi = mid;
                node *= 2;
            } else {
                self.bits &= !(1 << node);
                lo = mid;
                node = node * 2 + 1;
            }
        }
    }

    fn victim(&self, allowed: u64) -> Option<usize> {
        if allowed == 0 {
            return None;
        }
        // Walk toward the cold side, but only into halves containing allowed
        // ways; fall back to the other half when the cold half is empty.
        let mut node = 1usize;
        let mut lo = 0usize;
        let mut hi = self.leaves;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let left_mask = mask_range(lo, mid) & allowed;
            let right_mask = mask_range(mid, hi) & allowed;
            let prefer_right = (self.bits >> node) & 1 == 1;
            let go_right = if right_mask == 0 {
                false
            } else if left_mask == 0 {
                true
            } else {
                prefer_right
            };
            if go_right {
                lo = mid;
                node = node * 2 + 1;
            } else {
                hi = mid;
                node *= 2;
            }
        }
        if (allowed >> lo) & 1 == 1 {
            Some(lo)
        } else {
            // the walked-to leaf is disallowed (can happen when allowed has
            // gaps relative to the pow2 tree); pick any allowed way
            Some(allowed.trailing_zeros() as usize)
        }
    }
}

#[inline]
fn mask_range(lo: usize, hi: usize) -> u64 {
    debug_assert!(hi <= 64 && lo <= hi);
    let hi_mask = if hi == 64 { u64::MAX } else { (1u64 << hi) - 1 };
    let lo_mask = if lo == 64 { u64::MAX } else { (1u64 << lo) - 1 };
    hi_mask & !lo_mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut r = Replacement::new(ReplacementKind::Lru, 4);
        let mut rng = Rng64::new(1);
        for (tick, way) in [(1, 0), (2, 1), (3, 2), (4, 3), (5, 0)] {
            r.touch(way, tick);
        }
        // all valid, all allowed: way 1 is the least recently used
        let v = r.victim(0b1111, 0b1111, 4, &mut rng);
        assert_eq!(v, Some(1));
    }

    #[test]
    fn invalid_way_preferred_over_eviction() {
        let mut r = Replacement::new(ReplacementKind::Lru, 4);
        let mut rng = Rng64::new(2);
        r.touch(0, 10);
        // way 2 invalid and allowed: take it even though way 0 is older
        let v = r.victim(0b0101, 0b0001, 4, &mut rng);
        assert_eq!(v, Some(2));
    }

    #[test]
    fn mask_restricts_victims() {
        let mut r = Replacement::new(ReplacementKind::Lru, 4);
        let mut rng = Rng64::new(3);
        r.touch(0, 1); // oldest
        r.touch(1, 2);
        r.touch(2, 3);
        r.touch(3, 4);
        // only ways 2-3 allowed: victim must be 2 even though 0 is older
        let v = r.victim(0b1100, 0b1111, 4, &mut rng);
        assert_eq!(v, Some(2));
    }

    #[test]
    fn empty_mask_gives_no_victim() {
        let mut r = Replacement::new(ReplacementKind::Lru, 4);
        let mut rng = Rng64::new(4);
        assert_eq!(r.victim(0, 0b1111, 4, &mut rng), None);
    }

    #[test]
    fn random_victim_within_mask() {
        let mut r = Replacement::new(ReplacementKind::Random, 8);
        let mut rng = Rng64::new(5);
        for _ in 0..1000 {
            let v = r
                .victim(0b0011_0000, 0xFF, 8, &mut rng)
                .expect("allowed nonempty");
            assert!(v == 4 || v == 5);
        }
    }

    #[test]
    fn plru_victim_is_allowed_and_not_hot() {
        let mut r = Replacement::new(ReplacementKind::TreePlru, 8);
        let mut rng = Rng64::new(6);
        // touch ways 0..4 heavily; victim among all should be in 4..8
        for _ in 0..4 {
            for w in 0..4 {
                r.touch(w, 0);
            }
        }
        let v = r.victim(0xFF, 0xFF, 8, &mut rng).expect("some victim");
        assert!(v >= 4, "PLRU should avoid recently-touched half, got {v}");
        // restricted mask always respected
        for _ in 0..100 {
            let v = r.victim(0b0000_1100, 0xFF, 8, &mut rng).expect("allowed");
            assert!(v == 2 || v == 3);
        }
    }

    #[test]
    fn plru_non_pow2_ways() {
        let mut r = Replacement::new(ReplacementKind::TreePlru, 20);
        let mut rng = Rng64::new(7);
        let allowed = (1u64 << 20) - 1;
        for _ in 0..100 {
            let v = r.victim(allowed, allowed, 20, &mut rng).expect("victim");
            assert!(v < 20);
            r.touch(v, 0);
        }
    }

    #[test]
    fn lru_64_ways() {
        let mut r = Replacement::new(ReplacementKind::Lru, 64);
        let mut rng = Rng64::new(8);
        for w in 0..64 {
            r.touch(w, w as u64 + 1);
        }
        let v = r.victim(u64::MAX, u64::MAX, 64, &mut rng);
        assert_eq!(v, Some(0));
    }
}
