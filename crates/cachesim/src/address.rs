//! Address decomposition — the front of the Figure-1 data path.
//!
//! A memory access carries a byte address; the cache splits it into an
//! in-line *offset*, a *set index* and a *tag*. The simulator operates on
//! line-granular addresses, so the offset is dropped at the boundary.

/// A byte address in the simulated address space.
pub type Address = u64;

/// What kind of access is being performed. Loads and stores flow through the
/// data caches; instruction fetches flow through L1i (then the shared L2/LLC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data read.
    Load,
    /// Data write.
    Store,
    /// Instruction fetch.
    IFetch,
}

/// Splits byte addresses into (tag, set, offset) for a given geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapper {
    offset_bits: u32,
    set_bits: u32,
}

impl AddressMapper {
    /// Build a mapper for `line_size`-byte lines and `sets` sets. Both must
    /// be powers of two (as in real caches).
    pub fn new(line_size: usize, sets: usize) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        AddressMapper {
            offset_bits: line_size.trailing_zeros(),
            set_bits: sets.trailing_zeros(),
        }
    }

    /// In-line byte offset.
    #[inline]
    pub fn offset(&self, addr: Address) -> u64 {
        addr & ((1 << self.offset_bits) - 1)
    }

    /// Set index.
    #[inline]
    pub fn set(&self, addr: Address) -> usize {
        ((addr >> self.offset_bits) & ((1 << self.set_bits) - 1)) as usize
    }

    /// Tag (the address bits above offset and set index).
    #[inline]
    pub fn tag(&self, addr: Address) -> u64 {
        addr >> (self.offset_bits + self.set_bits)
    }

    /// Line-granular address (offset stripped) — identity of the cached line.
    #[inline]
    pub fn line_addr(&self, addr: Address) -> u64 {
        addr >> self.offset_bits
    }

    /// Reconstruct a byte address from tag and set (offset zero). Inverse of
    /// the decomposition, used by tests and by victim writeback bookkeeping.
    #[inline]
    pub fn compose(&self, tag: u64, set: usize) -> Address {
        (tag << (self.offset_bits + self.set_bits)) | ((set as u64) << self.offset_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decompose_compose_roundtrip() {
        let m = AddressMapper::new(64, 1024);
        for addr in [0u64, 64, 4096, 0xDEAD_BEC0, !63] {
            let tag = m.tag(addr);
            let set = m.set(addr);
            let recomposed = m.compose(tag, set);
            assert_eq!(m.tag(recomposed), tag);
            assert_eq!(m.set(recomposed), set);
            assert_eq!(recomposed, addr & !63, "offset bits cleared");
        }
    }

    #[test]
    fn consecutive_lines_hit_consecutive_sets() {
        let m = AddressMapper::new(64, 256);
        assert_eq!(m.set(0), 0);
        assert_eq!(m.set(64), 1);
        assert_eq!(m.set(64 * 255), 255);
        assert_eq!(m.set(64 * 256), 0, "wraps around");
        assert_eq!(m.tag(64 * 256), 1, "tag increments on wrap");
    }

    #[test]
    fn same_line_same_identity() {
        let m = AddressMapper::new(64, 64);
        assert_eq!(m.line_addr(100), m.line_addr(127));
        assert_ne!(m.line_addr(127), m.line_addr(128));
    }

    #[test]
    fn offset_extraction() {
        let m = AddressMapper::new(64, 64);
        assert_eq!(m.offset(0x7F), 0x3F);
        assert_eq!(m.offset(0x40), 0);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_sets_rejected() {
        AddressMapper::new(64, 100);
    }
}
