//! The multi-workload cache hierarchy: private L1d/L1i/L2 per workload, one
//! shared way-partitioned LLC.
//!
//! Every memory access walks L1 → L2 → LLC → memory, updating the 29
//! counters of [`crate::counters`] along the way. The LLC applies each
//! workload's current *fill mask* (its CAT class of service); switching the
//! mask at runtime — what the paper's proxy services do on a short-term
//! allocation timeout — immediately changes where the workload's future
//! fills may land while leaving resident lines untouched.
//!
//! Accounting simplifications (documented in DESIGN.md): dirty state is
//! tracked at the LLC only, so `MemWrites` counts dirty LLC evictions;
//! L1/L2 evictions are counted but generate no memory traffic of their own.

use crate::address::{AccessKind, Address};
use crate::cache::{AccessOutcome, CacheLevel};
use crate::config::HierarchyConfig;
use crate::counters::{Counter, CounterBank, CounterSet};
use crate::replacement::ReplacementKind;
use crate::WorkloadId;
use stca_cat::CapacityBitmask;
use std::collections::HashMap;

/// How LLC way masks are enforced.
///
/// Intel CAT restricts *fills* only: a resident line hits even from a way
/// outside the current mask ([`MaskMode::FillOnly`], the default and what
/// the paper's hardware does). [`MaskMode::Strict`] models hard
/// partitioning (e.g. page coloring): a workload cannot even *hit* outside
/// its mask — the foreign line is invalidated and refetched into the
/// partition. The difference is exactly the grace period a revoked
/// short-term allocation enjoys under CAT, which the `ablation_maskmode`
/// bench quantifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaskMode {
    /// CAT semantics: masks gate fills, hits are unrestricted.
    #[default]
    FillOnly,
    /// Hard partitioning: hits outside the mask are treated as misses.
    Strict,
}

/// Deepest level that served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelHit {
    /// Served by L1 (data or instruction).
    L1,
    /// Served by the private L2.
    L2,
    /// Served by the shared LLC.
    Llc,
    /// Served from main memory.
    Memory,
}

struct PrivateCaches {
    l1d: CacheLevel,
    l1i: CacheLevel,
    l2: CacheLevel,
}

/// The simulated platform: shared LLC + per-workload private caches.
/// Workload ids index dense vectors (experiment drivers assign small ids),
/// keeping the per-access path free of hashing.
///
/// ```
/// use stca_cachesim::{AccessKind, Hierarchy, HierarchyConfig, LevelHit};
/// use stca_cat::AllocationSetting;
/// let config = HierarchyConfig::experiment_default();
/// let mut hier = Hierarchy::new(config, 1);
/// // confine workload 0's fills to ways 0-3 (a CAT class of service)
/// hier.set_llc_mask(0, AllocationSetting::new(0, 4).to_cbm(config.llc.ways).unwrap());
/// assert_eq!(hier.access(0, 0x1000, AccessKind::Load), LevelHit::Memory);
/// assert_eq!(hier.access(0, 0x1000, AccessKind::Load), LevelHit::L1);
/// ```
pub struct Hierarchy {
    config: HierarchyConfig,
    llc: CacheLevel,
    privates: Vec<Option<PrivateCaches>>,
    fill_masks: HashMap<WorkloadId, u64>,
    counters: CounterBank,
    mask_mode: MaskMode,
    seed: u64,
}

impl Hierarchy {
    /// Build an empty hierarchy. Workload private caches are created on
    /// first access. Until a mask is installed, a workload fills the whole
    /// LLC (hardware reset behaviour, COS 0 = full mask).
    pub fn new(config: HierarchyConfig, seed: u64) -> Self {
        Hierarchy {
            llc: CacheLevel::new(config.llc, ReplacementKind::Lru, seed ^ 0x11c),
            config,
            privates: Vec::new(),
            fill_masks: HashMap::new(),
            counters: CounterBank::new(),
            mask_mode: MaskMode::FillOnly,
            seed,
        }
    }

    /// Select how LLC masks are enforced (default: CAT fill-only).
    pub fn set_mask_mode(&mut self, mode: MaskMode) {
        self.mask_mode = mode;
    }

    /// Current mask-enforcement mode.
    pub fn mask_mode(&self) -> MaskMode {
        self.mask_mode
    }

    /// Configuration in use.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Install a validated CAT mask for a workload's LLC fills.
    pub fn set_llc_mask(&mut self, w: WorkloadId, mask: CapacityBitmask) {
        assert_eq!(
            mask.cache_ways(),
            self.config.llc.ways,
            "mask validated against a different LLC"
        );
        self.fill_masks.insert(w, mask.bits());
    }

    /// Current fill mask bits for a workload (full mask if never set).
    pub fn llc_mask_bits(&self, w: WorkloadId) -> u64 {
        let full = if self.config.llc.ways == 64 {
            u64::MAX
        } else {
            (1u64 << self.config.llc.ways) - 1
        };
        self.fill_masks.get(&w).copied().unwrap_or(full)
    }

    fn privates_of(&mut self, w: WorkloadId) -> &mut PrivateCaches {
        let idx = w as usize;
        if idx >= self.privates.len() {
            self.privates.resize_with(idx + 1, || None);
        }
        let config = &self.config;
        let seed = self.seed;
        self.privates[idx].get_or_insert_with(|| PrivateCaches {
            l1d: CacheLevel::new(
                config.l1d,
                ReplacementKind::Lru,
                seed ^ ((w as u64) << 8) | 1,
            ),
            l1i: CacheLevel::new(
                config.l1i,
                ReplacementKind::Lru,
                seed ^ ((w as u64) << 8) | 2,
            ),
            l2: CacheLevel::new(
                config.l2,
                ReplacementKind::Lru,
                seed ^ ((w as u64) << 8) | 3,
            ),
        })
    }

    /// Perform one memory access for `workload`. Returns the deepest level
    /// reached and charges its latency (in cycles) to the workload.
    pub fn access(&mut self, w: WorkloadId, addr: Address, kind: AccessKind) -> LevelHit {
        const PRIV_FULL: u64 = u64::MAX; // private caches are not partitioned
        let llc_mask = self.llc_mask_bits(w);
        let lat = self.config.latencies;
        let is_store = kind == AccessKind::Store;

        // ---- L1 ----
        let l1_outcome = {
            let p = self.privates_of(w);
            let l1 = match kind {
                AccessKind::IFetch => &mut p.l1i,
                _ => &mut p.l1d,
            };
            l1.lookup(addr, PRIV_FULL)
        };
        {
            let c = self.counters.of_mut(w);
            match kind {
                AccessKind::Load => c.bump(Counter::L1dLoads),
                AccessKind::Store => c.bump(Counter::L1dStores),
                AccessKind::IFetch => c.bump(Counter::L1iFetches),
            }
        }
        if let AccessOutcome::Hit { .. } = l1_outcome {
            self.counters.of_mut(w).add(Counter::Cycles, lat.l1);
            if is_store {
                // write-through dirty state to the LLC copy when present
                self.llc.mark_dirty(addr);
            }
            return LevelHit::L1;
        }
        {
            let c = self.counters.of_mut(w);
            match kind {
                AccessKind::Load => c.bump(Counter::L1dLoadMisses),
                AccessKind::Store => c.bump(Counter::L1dStoreMisses),
                AccessKind::IFetch => c.bump(Counter::L1iFetchMisses),
            }
        }

        // ---- L2 ----
        let l2_outcome = self.privates_of(w).l2.lookup(addr, PRIV_FULL);
        {
            let c = self.counters.of_mut(w);
            c.bump(Counter::L2Requests);
            if is_store {
                c.bump(Counter::L2Stores);
            } else {
                c.bump(Counter::L2Loads);
            }
        }
        if let AccessOutcome::Hit { .. } = l2_outcome {
            self.fill_l1(w, addr, kind);
            self.counters.of_mut(w).add(Counter::Cycles, lat.l2);
            if is_store {
                self.llc.mark_dirty(addr);
            }
            return LevelHit::L2;
        }
        {
            let c = self.counters.of_mut(w);
            if is_store {
                c.bump(Counter::L2StoreMisses);
            } else {
                c.bump(Counter::L2LoadMisses);
            }
        }

        // ---- LLC ----
        let llc_outcome = self.llc.lookup(addr, llc_mask);
        {
            let c = self.counters.of_mut(w);
            c.bump(Counter::LlcAccesses);
            if is_store {
                c.bump(Counter::LlcStores);
            } else {
                c.bump(Counter::LlcLoads);
            }
        }
        // strict partitioning demotes foreign-way hits to misses: the
        // resident copy is invalidated and refetched into the partition
        let llc_outcome = match llc_outcome {
            AccessOutcome::Hit {
                foreign_way: true, ..
            } if self.mask_mode == MaskMode::Strict => {
                self.llc.invalidate(addr);
                AccessOutcome::Miss
            }
            other => other,
        };
        match llc_outcome {
            AccessOutcome::Hit { foreign_way, .. } => {
                if foreign_way {
                    self.counters.of_mut(w).bump(Counter::LlcForeignWayHits);
                }
                if is_store {
                    self.llc.mark_dirty(addr);
                }
                self.fill_l2(w, addr);
                self.fill_l1(w, addr, kind);
                self.counters.of_mut(w).add(Counter::Cycles, lat.llc);
                LevelHit::Llc
            }
            AccessOutcome::Miss => {
                {
                    let c = self.counters.of_mut(w);
                    c.bump(Counter::LlcMisses);
                    if is_store {
                        c.bump(Counter::LlcStoreMisses);
                    } else {
                        c.bump(Counter::LlcLoadMisses);
                    }
                    c.bump(Counter::MemReads);
                }
                // fill LLC under the CAT mask
                match self.llc.fill(addr, w, llc_mask, is_store) {
                    Ok(evicted) => {
                        self.counters.of_mut(w).bump(Counter::LlcFills);
                        if let Some(ev) = evicted {
                            if ev.dirty {
                                self.counters.of_mut(w).bump(Counter::MemWrites);
                            }
                            if ev.owner != w {
                                self.counters.of_mut(w).bump(Counter::LlcEvictionsCaused);
                                self.counters
                                    .of_mut(ev.owner)
                                    .bump(Counter::LlcEvictionsSuffered);
                            }
                        }
                    }
                    Err(()) => {
                        // empty mask: the access bypasses the LLC entirely
                    }
                }
                self.fill_l2(w, addr);
                self.fill_l1(w, addr, kind);
                self.counters.of_mut(w).add(Counter::Cycles, lat.memory);
                LevelHit::Memory
            }
        }
    }

    fn fill_l1(&mut self, w: WorkloadId, addr: Address, kind: AccessKind) {
        let evicted = {
            let p = self.privates_of(w);
            let l1 = match kind {
                AccessKind::IFetch => &mut p.l1i,
                _ => &mut p.l1d,
            };
            // u64::MAX write-enable covers every way, so fill cannot report
            // an empty-mask bypass; treat the impossible Err as "no eviction"
            l1.fill(addr, w, u64::MAX, false).unwrap_or(None)
        };
        if evicted.is_some() && kind != AccessKind::IFetch {
            self.counters.of_mut(w).bump(Counter::L1dEvictions);
        }
    }

    fn fill_l2(&mut self, w: WorkloadId, addr: Address) {
        let evicted = self
            .privates_of(w)
            .l2
            .fill(addr, w, u64::MAX, false)
            .unwrap_or(None);
        if evicted.is_some() {
            self.counters.of_mut(w).bump(Counter::L2Evictions);
        }
    }

    /// Charge retired instructions plus their base (non-memory) cycles.
    pub fn retire(&mut self, w: WorkloadId, instructions: u64, base_cycles: u64) {
        let c = self.counters.of_mut(w);
        c.add(Counter::Instructions, instructions);
        c.add(Counter::Cycles, base_cycles);
    }

    /// Refresh the sampled-gauge counters (occupancy, boost flag) for a
    /// workload; called by the profiler at each sampling tick.
    pub fn update_gauges(&mut self, w: WorkloadId, boost_active: bool) {
        let occ = self.llc.occupancy_of(w);
        let c = self.counters.of_mut(w);
        c.set(Counter::LlcOccupancyLines, occ);
        c.set(Counter::BoostActive, boost_active as u64);
    }

    /// Snapshot a workload's counters.
    pub fn counters_of(&self, w: WorkloadId) -> CounterSet {
        self.counters.of(w)
    }

    /// LLC lines currently owned by a workload.
    pub fn llc_occupancy(&self, w: WorkloadId) -> u64 {
        self.llc.occupancy_of(w)
    }

    /// Drop a workload's private caches and LLC lines (container teardown).
    pub fn remove_workload(&mut self, w: WorkloadId) {
        if let Some(slot) = self.privates.get_mut(w as usize) {
            *slot = None;
        }
        self.llc.flush_workload(w);
        self.fill_masks.remove(&w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheGeometry;
    use stca_cat::AllocationSetting;

    fn tiny_config() -> HierarchyConfig {
        HierarchyConfig {
            l1d: CacheGeometry::new(512, 2, 64), // 4 sets x 2 ways
            l1i: CacheGeometry::new(512, 2, 64),
            l2: CacheGeometry::new(2048, 4, 64), // 8 sets x 4 ways
            llc: CacheGeometry::new(8192, 8, 64), // 16 sets x 8 ways
            latencies: Default::default(),
        }
    }

    #[test]
    fn first_access_misses_everywhere_then_hits_l1() {
        let mut h = Hierarchy::new(tiny_config(), 1);
        assert_eq!(h.access(1, 0x1000, AccessKind::Load), LevelHit::Memory);
        assert_eq!(h.access(1, 0x1000, AccessKind::Load), LevelHit::L1);
        let c = h.counters_of(1);
        assert_eq!(c.get(Counter::L1dLoads), 2);
        assert_eq!(c.get(Counter::L1dLoadMisses), 1);
        assert_eq!(c.get(Counter::LlcMisses), 1);
        assert_eq!(c.get(Counter::MemReads), 1);
        assert_eq!(c.get(Counter::LlcFills), 1);
    }

    #[test]
    fn l1_conflict_falls_back_to_l2() {
        let mut h = Hierarchy::new(tiny_config(), 2);
        // L1d: 4 sets -> same-set stride is 4*64 = 256B; 2 ways
        // touch 3 conflicting lines; line 0 evicted from L1 but lives in L2
        for i in 0..3u64 {
            h.access(1, i * 256, AccessKind::Load);
        }
        assert_eq!(h.access(1, 0, AccessKind::Load), LevelHit::L2);
        assert!(h.counters_of(1).get(Counter::L1dEvictions) >= 1);
    }

    #[test]
    fn ifetch_uses_l1i() {
        let mut h = Hierarchy::new(tiny_config(), 3);
        h.access(1, 0x2000, AccessKind::IFetch);
        h.access(1, 0x2000, AccessKind::IFetch);
        let c = h.counters_of(1);
        assert_eq!(c.get(Counter::L1iFetches), 2);
        assert_eq!(c.get(Counter::L1iFetchMisses), 1);
        assert_eq!(c.get(Counter::L1dLoads), 0);
        // data access to the same address does not hit L1i
        assert_ne!(h.access(1, 0x2000, AccessKind::Load), LevelHit::L1);
    }

    #[test]
    fn llc_mask_confines_fills_and_creates_contention() {
        let mut h = Hierarchy::new(tiny_config(), 4);
        let ways = 8;
        // workload 1 fills ways 0-3, workload 2 fills ways 4-7: no interference
        h.set_llc_mask(1, AllocationSetting::new(0, 4).to_cbm(ways).expect("ok"));
        h.set_llc_mask(2, AllocationSetting::new(4, 4).to_cbm(ways).expect("ok"));
        // both touch many lines (more than their partitions hold)
        for i in 0..512u64 {
            h.access(1, i * 64, AccessKind::Load);
            h.access(2, 0x40000 + i * 64, AccessKind::Load);
        }
        let c1 = h.counters_of(1);
        let c2 = h.counters_of(2);
        assert_eq!(
            c1.get(Counter::LlcEvictionsCaused),
            0,
            "disjoint masks cannot evict"
        );
        assert_eq!(c2.get(Counter::LlcEvictionsCaused), 0);
        // overlapping mask now causes cross-workload evictions
        h.set_llc_mask(2, AllocationSetting::new(0, 8).to_cbm(ways).expect("ok"));
        for i in 0..512u64 {
            h.access(2, 0x80000 + i * 64, AccessKind::Load);
        }
        assert!(h.counters_of(2).get(Counter::LlcEvictionsCaused) > 0);
        assert!(h.counters_of(1).get(Counter::LlcEvictionsSuffered) > 0);
    }

    #[test]
    fn more_llc_ways_means_fewer_misses() {
        // the fundamental curve the paper's models learn
        let miss_rate = |ways_allowed: usize| -> f64 {
            let mut h = Hierarchy::new(tiny_config(), 5);
            h.set_llc_mask(
                1,
                AllocationSetting::new(0, ways_allowed)
                    .to_cbm(8)
                    .expect("ok"),
            );
            // working set: 64 lines; LLC partition holds 16*ways_allowed lines;
            // L2 holds 32, L1 8 — loop repeatedly
            let mut misses_before = 0;
            for rep in 0..20 {
                for i in 0..64u64 {
                    h.access(1, i * 64, AccessKind::Load);
                }
                if rep == 9 {
                    misses_before = h.counters_of(1).get(Counter::LlcMisses);
                }
            }
            let total = h.counters_of(1).get(Counter::LlcMisses) - misses_before;
            total as f64
        };
        let m2 = miss_rate(2);
        let m6 = miss_rate(6);
        assert!(
            m6 < m2,
            "6-way partition should miss less than 2-way: {m6} vs {m2}"
        );
    }

    #[test]
    fn store_dirty_writeback_counted() {
        let mut h = Hierarchy::new(tiny_config(), 6);
        h.set_llc_mask(1, AllocationSetting::new(0, 1).to_cbm(8).expect("ok"));
        // store a line, then thrash its set within the single allowed way
        h.access(1, 0, AccessKind::Store);
        // same LLC set: llc has 16 sets -> stride 16*64 = 1024
        h.access(1, 1024, AccessKind::Load); // evicts dirty line
        let c = h.counters_of(1);
        assert!(
            c.get(Counter::MemWrites) >= 1,
            "dirty eviction must write back"
        );
    }

    #[test]
    fn retire_and_gauges() {
        let mut h = Hierarchy::new(tiny_config(), 7);
        h.retire(1, 1000, 500);
        h.access(1, 0, AccessKind::Load);
        h.update_gauges(1, true);
        let c = h.counters_of(1);
        assert_eq!(c.get(Counter::Instructions), 1000);
        assert_eq!(c.get(Counter::BoostActive), 1);
        assert_eq!(c.get(Counter::LlcOccupancyLines), 1);
        assert!(c.ipc() > 0.0);
    }

    #[test]
    fn remove_workload_clears_state() {
        let mut h = Hierarchy::new(tiny_config(), 8);
        h.access(1, 0, AccessKind::Load);
        assert_eq!(h.llc_occupancy(1), 1);
        h.remove_workload(1);
        assert_eq!(h.llc_occupancy(1), 0);
        // counters persist (history), but occupancy is gone
        assert_eq!(h.counters_of(1).get(Counter::LlcFills), 1);
    }

    #[test]
    fn strict_mode_never_hits_foreign_ways() {
        let run = |mode: MaskMode| {
            let mut h = Hierarchy::new(tiny_config(), 21);
            h.set_mask_mode(mode);
            h.set_llc_mask(1, AllocationSetting::new(0, 8).to_cbm(8).expect("ok"));
            // resident lines land anywhere under the full mask
            for i in 0..64u64 {
                h.access(1, 0x9000 + i * 64, AccessKind::Load);
            }
            // shrink to the upper half and retouch
            h.set_llc_mask(1, AllocationSetting::new(4, 4).to_cbm(8).expect("ok"));
            // thrash private caches so LLC is actually consulted
            for i in 0..300u64 {
                h.access(1, 0x20000 + i * 64, AccessKind::Load);
            }
            for i in 0..64u64 {
                h.access(1, 0x9000 + i * 64, AccessKind::Load);
            }
            h.counters_of(1).get(Counter::LlcForeignWayHits)
        };
        assert_eq!(run(MaskMode::Strict), 0, "strict mode demotes foreign hits");
        // the same sequence under CAT semantics does hit foreign ways
        assert!(run(MaskMode::FillOnly) > 0);
    }

    #[test]
    fn foreign_way_hits_after_mask_shrink() {
        let mut h = Hierarchy::new(tiny_config(), 9);
        h.set_llc_mask(1, AllocationSetting::new(0, 8).to_cbm(8).expect("ok"));
        // fill a line while holding the full mask — lands in way 0
        h.access(1, 0x3000, AccessKind::Load);
        // shrink mask to ways 4-7; resident line still hits (foreign way).
        // first evict it from L1/L2 by thrashing private caches
        h.set_llc_mask(1, AllocationSetting::new(4, 4).to_cbm(8).expect("ok"));
        for i in 1..200u64 {
            h.access(1, 0x3000 + i * 64, AccessKind::Load);
        }
        let before = h.counters_of(1).get(Counter::LlcForeignWayHits);
        let hit = h.access(1, 0x3000, AccessKind::Load);
        if hit == LevelHit::Llc {
            assert!(h.counters_of(1).get(Counter::LlcForeignWayHits) > before);
        }
    }
}
