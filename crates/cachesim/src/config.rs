//! Cache geometries and hierarchy configuration.
//!
//! The default configuration models the paper's primary platform, an Intel
//! Xeon E5-2683 v4: 40 MB, 20-way LLC (2 MB per way — the unit the paper
//! reserves per workload), 256 KB 8-way private L2, 32 KB 8-way private L1.
//! Figure 7b's alternate platforms (20/30/59/72 MB LLCs) are constructed by
//! [`HierarchyConfig::xeon_with_llc_mb`].
//!
//! A `scale_divisor` shrinks every level's set count (way counts are
//! preserved) so experiments run in reasonable time; workload footprints are
//! scaled by the same factor in the workloads crate, preserving the
//! footprint-to-capacity ratios that determine miss-rate curves.

/// Geometry of a single cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (number of ways).
    pub ways: usize,
    /// Line size in bytes.
    pub line_size: usize,
}

impl CacheGeometry {
    /// Construct and sanity-check a geometry. Set count must come out a
    /// power of two.
    pub fn new(size_bytes: usize, ways: usize, line_size: usize) -> Self {
        let g = CacheGeometry {
            size_bytes,
            ways,
            line_size,
        };
        let sets = g.sets();
        assert!(sets >= 1, "geometry has no sets");
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        g
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_size)
    }

    /// Number of lines.
    pub fn lines(&self) -> usize {
        self.size_bytes / self.line_size
    }

    /// Capacity of one way in bytes.
    pub fn way_bytes(&self) -> usize {
        self.size_bytes / self.ways
    }

    /// Same way count and line size, `1/divisor` the sets. The divisor is
    /// clamped so the cache keeps at least one set (tiny L1s bottom out
    /// while a large LLC keeps scaling).
    pub fn scaled_down(&self, divisor: usize) -> CacheGeometry {
        assert!(
            divisor >= 1 && divisor.is_power_of_two(),
            "divisor must be a power of two"
        );
        let divisor = divisor.min(self.sets());
        CacheGeometry::new(self.size_bytes / divisor, self.ways, self.line_size)
    }
}

/// Access latencies in cycles, per level reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// Hit in L1 (data or instruction).
    pub l1: u64,
    /// Hit in L2.
    pub l2: u64,
    /// Hit in LLC.
    pub llc: u64,
    /// Full miss served from memory.
    pub memory: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        // Typical Broadwell-class figures.
        Latencies {
            l1: 4,
            l2: 12,
            llc: 42,
            memory: 200,
        }
    }
}

/// Configuration of the full hierarchy for a multi-workload experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Private L1 data cache geometry (one instance per workload).
    pub l1d: CacheGeometry,
    /// Private L1 instruction cache geometry (one per workload).
    pub l1i: CacheGeometry,
    /// Private unified L2 geometry (one per workload).
    pub l2: CacheGeometry,
    /// Shared last-level cache geometry.
    pub llc: CacheGeometry,
    /// Latency model.
    pub latencies: Latencies,
}

impl HierarchyConfig {
    /// The paper's primary platform: Xeon E5-2683 v4 (40 MB, 20-way LLC,
    /// 2 MB per way — the unit the paper reserves per workload).
    pub fn xeon_e5_2683() -> Self {
        HierarchyConfig {
            l1d: CacheGeometry::new(32 * 1024, 8, 64),
            l1i: CacheGeometry::new(32 * 1024, 8, 64),
            l2: CacheGeometry::new(256 * 1024, 8, 64),
            llc: CacheGeometry::new(40 * 1024 * 1024, 20, 64),
            latencies: Latencies::default(),
        }
    }

    /// Platform with an LLC of roughly `mb` megabytes (Figure 7b's
    /// 20/30/40/59/72 MB machines). Every platform keeps the E5-2683's
    /// 2 MB-per-way capacity (32768 sets of 64-byte lines) and varies the
    /// way count, so `mb` is rounded to an even number of 2 MB ways
    /// (59 MB → 30 ways = 60 MB), as noted in EXPERIMENTS.md.
    pub fn xeon_with_llc_mb(mb: usize) -> Self {
        let ways = (mb / 2).max(2);
        let line = 64;
        let sets = 32 * 1024;
        HierarchyConfig {
            llc: CacheGeometry::new(sets * ways * line, ways, line),
            ..HierarchyConfig::xeon_e5_2683()
        }
    }

    /// Scale every level down by `divisor` (power of two). Way counts are
    /// preserved so CAT masks keep their meaning.
    pub fn scaled_down(&self, divisor: usize) -> HierarchyConfig {
        HierarchyConfig {
            l1d: self.l1d.scaled_down(divisor),
            l1i: self.l1i.scaled_down(divisor),
            l2: self.l2.scaled_down(divisor),
            llc: self.llc.scaled_down(divisor),
            latencies: self.latencies,
        }
    }

    /// The default experiment configuration: the E5-2683 platform with the
    /// LLC scaled down 64x (640 KB, still 20-way) and the private caches
    /// scaled more gently (L1 4 KB, L2 16 KB) so the hierarchy keeps its
    /// filtering structure. Experiments complete in seconds while
    /// preserving the ways-vs-footprint dynamics.
    pub fn experiment_default() -> Self {
        let base = HierarchyConfig::xeon_e5_2683();
        HierarchyConfig {
            l1d: base.l1d.scaled_down(8),
            l1i: base.l1i.scaled_down(8),
            l2: base.l2.scaled_down(16),
            llc: base.llc.scaled_down(64),
            latencies: base.latencies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_arithmetic() {
        let g = CacheGeometry::new(32 * 1024, 8, 64);
        assert_eq!(g.sets(), 64);
        assert_eq!(g.lines(), 512);
        assert_eq!(g.way_bytes(), 4096);
    }

    #[test]
    fn e5_2683_llc_shape() {
        let c = HierarchyConfig::xeon_e5_2683();
        assert_eq!(c.llc.ways, 20);
        assert!(c.llc.sets().is_power_of_two());
        // 2 MB per way, matching the paper's per-workload reservation unit
        assert_eq!(c.llc.way_bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn scaling_preserves_ways() {
        let c = HierarchyConfig::xeon_e5_2683().scaled_down(64);
        assert_eq!(c.llc.ways, 20);
        assert_eq!(c.l1d.ways, 8);
        assert_eq!(c.llc.size_bytes, 40 * 1024 * 1024 / 64);
    }

    #[test]
    fn llc_mb_variants_are_valid() {
        for (mb, want_ways) in [(20, 10), (30, 15), (40, 20), (59, 29), (72, 36)] {
            let c = HierarchyConfig::xeon_with_llc_mb(mb);
            assert!(c.llc.sets().is_power_of_two());
            assert_eq!(c.llc.ways, want_ways);
            assert_eq!(c.llc.way_bytes(), 2 * 1024 * 1024);
        }
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_geometry_rejected() {
        CacheGeometry::new(48 * 1024, 8, 64); // 96 sets
    }

    #[test]
    fn default_latencies_ordered() {
        let l = Latencies::default();
        assert!(l.l1 < l.l2 && l.l2 < l.llc && l.llc < l.memory);
    }
}
