//! Short-term allocation policies — the paper's `(a, a', t)` triple.
//!
//! A STAP holds a *default* allocation setting `a`, a *boosted* setting `a'`
//! granting access to additional (shared) ways, and a timeout `t` expressed
//! relative to the workload's expected service time (Eq. 4):
//!
//! ```text
//! response_time / expected_service_time > T   =>   switch a -> a'
//! ```
//!
//! `T = 0` means every query immediately uses the shared ways; the paper's
//! Table 2 upper bound `T = 6` (600%) effectively disables short-term
//! allocation. The boost is revoked when the triggering query completes.

use crate::allocation::AllocationSetting;
use stca_util::Seconds;

/// A short-term allocation policy for one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShortTermPolicy {
    /// Default allocation setting (`a` in the paper).
    pub default: AllocationSetting,
    /// Boosted setting granted on timeout (`a'`).
    pub boosted: AllocationSetting,
    /// Timeout as a multiple of expected service time (`t`, Eq. 4).
    pub timeout_ratio: f64,
}

/// Timeout ratio above which short-term allocation is considered disabled
/// (Table 2's 600% bound).
pub const NEVER_BOOST_RATIO: f64 = 6.0;

impl ShortTermPolicy {
    /// Policy that boosts a query once its time in system exceeds
    /// `timeout_ratio x` the expected service time.
    pub fn new(default: AllocationSetting, boosted: AllocationSetting, timeout_ratio: f64) -> Self {
        assert!(timeout_ratio >= 0.0, "timeout ratio must be non-negative");
        assert!(
            default.length > 0 && boosted.length > 0,
            "settings must be non-empty"
        );
        ShortTermPolicy {
            default,
            boosted,
            timeout_ratio,
        }
    }

    /// Static policy: never boost (the `(a, a, 0)` denominator case of
    /// Eq. 3, with the timeout pushed past the disable bound).
    pub fn static_only(default: AllocationSetting) -> Self {
        ShortTermPolicy {
            default,
            boosted: default,
            timeout_ratio: NEVER_BOOST_RATIO,
        }
    }

    /// Whether this policy can ever trigger a boost.
    pub fn boost_enabled(&self) -> bool {
        self.timeout_ratio < NEVER_BOOST_RATIO && self.boosted != self.default
    }

    /// Absolute timeout for a workload whose expected service time is
    /// `expected_service` seconds.
    pub fn absolute_timeout(&self, expected_service: Seconds) -> Seconds {
        self.timeout_ratio * expected_service
    }

    /// Evaluate Eq. 4: should a query that has been in the system for
    /// `time_in_system` (queueing + service so far) be boosted?
    pub fn should_boost(&self, time_in_system: Seconds, expected_service: Seconds) -> bool {
        self.boost_enabled() && time_in_system >= self.absolute_timeout(expected_service)
    }

    /// Gross allocation increase `l_a' / l_a` (Eq. 3 denominator).
    pub fn allocation_ratio(&self) -> f64 {
        self.default.allocation_ratio(&self.boosted)
    }

    /// Number of ways gained during a boost.
    pub fn boost_ways(&self) -> usize {
        self.boosted.length.saturating_sub(self.default.length)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(t: f64) -> ShortTermPolicy {
        ShortTermPolicy::new(
            AllocationSetting::new(0, 2),
            AllocationSetting::new(0, 4),
            t,
        )
    }

    #[test]
    fn zero_timeout_always_boosts() {
        let p = policy(0.0);
        assert!(p.should_boost(0.0, 10.0));
        assert!(p.should_boost(1e-9, 10.0));
    }

    #[test]
    fn timeout_threshold_is_relative_to_service_time() {
        let p = policy(1.5);
        // service time 100s -> boost at 150s (the paper's worked example)
        assert!(!p.should_boost(149.0, 100.0));
        assert!(p.should_boost(150.0, 100.0));
        // service time 2s -> boost at 3s
        assert!(!p.should_boost(2.9, 2.0));
        assert!(p.should_boost(3.0, 2.0));
    }

    #[test]
    fn static_policy_never_boosts() {
        let p = ShortTermPolicy::static_only(AllocationSetting::new(0, 2));
        assert!(!p.boost_enabled());
        assert!(!p.should_boost(1e12, 1.0));
        assert!((p.allocation_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_at_disable_bound_never_boosts() {
        let p = policy(NEVER_BOOST_RATIO);
        assert!(!p.boost_enabled());
    }

    #[test]
    fn allocation_ratio_and_boost_ways() {
        let p = policy(1.0);
        assert!((p.allocation_ratio() - 2.0).abs() < 1e-12);
        assert_eq!(p.boost_ways(), 2);
    }

    #[test]
    fn absolute_timeout_scales_with_service_time() {
        let p = policy(1.5);
        assert!((p.absolute_timeout(100.0) - 150.0).abs() < 1e-12);
        assert!((p.absolute_timeout(0.001) - 0.0015).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn negative_timeout_rejected() {
        policy(-0.1);
    }
}
