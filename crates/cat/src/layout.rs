//! Way-layout construction for collocated workloads, plus validators for the
//! two structural conjectures of §2.
//!
//! The evaluation's canonical layout collocates a *pair* of services: each
//! reserves private ways for baseline performance and a middle region is
//! shared for short-term allocation. E.g. with 2 private ways each and a
//! 2-way shared region on a 6-way slice: Jacobi gets ways #0–1 private, BFS
//! gets ways #4–5 private, and either (or both) may fill ways #2–3 while
//! boosted. Because CAT masks must be contiguous, the boosted masks remain
//! contiguous spans that cover the private span plus the shared region.
//!
//! For >2 workloads (Figure 7b scales up to larger caches) a *chain* layout
//! alternates private and shared regions; each workload then shares with at
//! most its two neighbours — exactly the bound Conjecture 2 proves is the
//! maximum possible under contiguous allocation with private reservations.

use crate::allocation::AllocationSetting;
use crate::stap::ShortTermPolicy;
use crate::CatError;

/// Pairwise layout: `[A private][shared][B private]` starting at `base_way`.
///
/// ```
/// use stca_cat::PairLayout;
/// // the paper's example: 2 private ways each, 2 shared in the middle
/// let layout = PairLayout::symmetric(2, 2);
/// let (a, b) = layout.policies(1.5, 0.75);
/// assert_eq!(a.default.length, 2);
/// assert_eq!(a.boosted.length, 4);
/// assert_eq!(a.boosted.overlap(&b.boosted), 2); // only the shared region
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairLayout {
    /// First way of the region used by the pair.
    pub base_way: usize,
    /// Private ways reserved for workload A.
    pub private_a: usize,
    /// Ways in the shared middle region.
    pub shared: usize,
    /// Private ways reserved for workload B.
    pub private_b: usize,
}

impl PairLayout {
    /// Symmetric pair layout with `private` ways each and `shared` middle
    /// ways, starting at way 0.
    pub fn symmetric(private: usize, shared: usize) -> Self {
        PairLayout {
            base_way: 0,
            private_a: private,
            shared,
            private_b: private,
        }
    }

    /// Total ways consumed by the layout.
    pub fn total_ways(&self) -> usize {
        self.private_a + self.shared + self.private_b
    }

    /// Default (private-only) setting for workload A.
    pub fn default_a(&self) -> AllocationSetting {
        AllocationSetting::new(self.base_way, self.private_a)
    }

    /// Boosted setting for workload A: private plus the shared region.
    pub fn boosted_a(&self) -> AllocationSetting {
        AllocationSetting::new(self.base_way, self.private_a + self.shared)
    }

    /// Default (private-only) setting for workload B.
    pub fn default_b(&self) -> AllocationSetting {
        AllocationSetting::new(self.base_way + self.private_a + self.shared, self.private_b)
    }

    /// Boosted setting for workload B: shared region plus private.
    pub fn boosted_b(&self) -> AllocationSetting {
        AllocationSetting::new(self.base_way + self.private_a, self.shared + self.private_b)
    }

    /// Build the two STAPs with the given timeout ratios.
    pub fn policies(&self, timeout_a: f64, timeout_b: f64) -> (ShortTermPolicy, ShortTermPolicy) {
        (
            ShortTermPolicy::new(self.default_a(), self.boosted_a(), timeout_a),
            ShortTermPolicy::new(self.default_b(), self.boosted_b(), timeout_b),
        )
    }

    /// Fully-shared static layout (the "static allocation: share fully"
    /// competitor): both workloads may fill every way of the region.
    pub fn fully_shared(&self) -> AllocationSetting {
        AllocationSetting::new(self.base_way, self.total_ways())
    }
}

/// Chain layout for `n >= 2` workloads:
/// `[P0][S0][P1][S1][P2]...` — workload `i` owns private region `Pi` and may
/// boost into the shared regions adjacent to it (`S(i-1)` and/or `Si`).
#[derive(Debug, Clone)]
pub struct ChainLayout {
    /// Private ways per workload.
    pub private: usize,
    /// Ways per shared region between neighbours.
    pub shared: usize,
    /// Number of workloads in the chain.
    pub n: usize,
}

impl ChainLayout {
    /// Create a chain of `n` workloads.
    pub fn new(n: usize, private: usize, shared: usize) -> Self {
        assert!(n >= 1);
        ChainLayout { private, shared, n }
    }

    /// Total ways consumed.
    pub fn total_ways(&self) -> usize {
        self.n * self.private + self.n.saturating_sub(1) * self.shared
    }

    /// Start way of workload `i`'s private region.
    fn private_start(&self, i: usize) -> usize {
        i * (self.private + self.shared)
    }

    /// Default setting for workload `i`.
    pub fn default_of(&self, i: usize) -> AllocationSetting {
        assert!(i < self.n);
        AllocationSetting::new(self.private_start(i), self.private)
    }

    /// Boosted setting for workload `i`: contiguity forces the boost to be a
    /// single span, so interior workloads extend across *both* adjacent
    /// shared regions; edge workloads extend across their one neighbour.
    pub fn boosted_of(&self, i: usize) -> AllocationSetting {
        assert!(i < self.n);
        let has_left = i > 0;
        let has_right = i + 1 < self.n;
        let start = if has_left {
            self.private_start(i) - self.shared
        } else {
            self.private_start(i)
        };
        let mut len = self.private;
        if has_left {
            len += self.shared;
        }
        if has_right {
            len += self.shared;
        }
        AllocationSetting::new(start, len)
    }

    /// All policies for the chain with a uniform timeout ratio.
    pub fn policies(&self, timeout_ratio: f64) -> Vec<ShortTermPolicy> {
        (0..self.n)
            .map(|i| ShortTermPolicy::new(self.default_of(i), self.boosted_of(i), timeout_ratio))
            .collect()
    }
}

/// A way layout for an experiment: a pair layout for two workloads or a
/// chain layout for three or more.
#[derive(Debug, Clone)]
pub enum ExperimentLayout {
    /// Two collocated workloads.
    Pair(PairLayout),
    /// `n >= 2` workloads in a chain of alternating private/shared regions.
    Chain(ChainLayout),
}

impl ExperimentLayout {
    /// Symmetric pair layout (the evaluation default).
    pub fn pair_symmetric(private: usize, shared: usize) -> Self {
        ExperimentLayout::Pair(PairLayout::symmetric(private, shared))
    }

    /// Number of workloads the layout hosts.
    pub fn workloads(&self) -> usize {
        match self {
            ExperimentLayout::Pair(_) => 2,
            ExperimentLayout::Chain(c) => c.n,
        }
    }

    /// Total ways consumed.
    pub fn total_ways(&self) -> usize {
        match self {
            ExperimentLayout::Pair(p) => p.total_ways(),
            ExperimentLayout::Chain(c) => c.total_ways(),
        }
    }

    /// Default (private-only) setting for workload `i`, or a typed error for
    /// an out-of-range index (a pair layout hosts exactly two workloads).
    pub fn default_of(&self, i: usize) -> Result<AllocationSetting, CatError> {
        match self {
            ExperimentLayout::Pair(p) => match i {
                0 => Ok(p.default_a()),
                1 => Ok(p.default_b()),
                _ => Err(CatError::WorkloadIndex {
                    index: i,
                    workloads: 2,
                }),
            },
            ExperimentLayout::Chain(c) if i < c.n => Ok(c.default_of(i)),
            ExperimentLayout::Chain(c) => Err(CatError::WorkloadIndex {
                index: i,
                workloads: c.n,
            }),
        }
    }

    /// Boosted setting for workload `i`, or a typed error out of range.
    pub fn boosted_of(&self, i: usize) -> Result<AllocationSetting, CatError> {
        match self {
            ExperimentLayout::Pair(p) => match i {
                0 => Ok(p.boosted_a()),
                1 => Ok(p.boosted_b()),
                _ => Err(CatError::WorkloadIndex {
                    index: i,
                    workloads: 2,
                }),
            },
            ExperimentLayout::Chain(c) if i < c.n => Ok(c.boosted_of(i)),
            ExperimentLayout::Chain(c) => Err(CatError::WorkloadIndex {
                index: i,
                workloads: c.n,
            }),
        }
    }

    /// STAPs for all workloads with the given per-workload timeouts.
    pub fn policies(&self, timeouts: &[f64]) -> Vec<ShortTermPolicy> {
        assert_eq!(timeouts.len(), self.workloads(), "one timeout per workload");
        match self {
            ExperimentLayout::Pair(p) => {
                let (a, b) = p.policies(timeouts[0], timeouts[1]);
                vec![a, b]
            }
            ExperimentLayout::Chain(c) => (0..c.n)
                .map(|i| ShortTermPolicy::new(c.default_of(i), c.boosted_of(i), timeouts[i]))
                .collect(),
        }
    }

    /// Static (never-boost) policies for all workloads.
    pub fn static_policies(&self) -> Vec<ShortTermPolicy> {
        match self {
            ExperimentLayout::Pair(p) => vec![
                ShortTermPolicy::static_only(p.default_a()),
                ShortTermPolicy::static_only(p.default_b()),
            ],
            ExperimentLayout::Chain(c) => (0..c.n)
                .map(|i| ShortTermPolicy::static_only(c.default_of(i)))
                .collect(),
        }
    }
}

/// The private region of a policy `(a, a')`: ways covered by **both** the
/// default and the boosted setting and by no other policy's settings (Eq. 1).
pub fn private_ways(policy: &ShortTermPolicy, others: &[ShortTermPolicy]) -> Vec<usize> {
    let a = policy.default;
    let ap = policy.boosted;
    let lo = a.offset.max(ap.offset);
    let hi = a.end().min(ap.end());
    (lo..hi)
        .filter(|&w| {
            others
                .iter()
                .all(|o| !o.default.covers(w) && !o.boosted.covers(w))
        })
        .collect()
}

/// Conjecture 1 (§2): under contiguous allocation, private regions of
/// distinct policies are disjoint. Returns `true` when the given policy set
/// satisfies it (it always should; the validator exists so property tests can
/// exercise the proof's claim against arbitrary layouts).
pub fn private_regions_disjoint(policies: &[ShortTermPolicy]) -> bool {
    let privates: Vec<Vec<usize>> = (0..policies.len())
        .map(|i| {
            let others: Vec<ShortTermPolicy> = policies
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, p)| *p)
                .collect();
            private_ways(&policies[i], &others)
        })
        .collect();
    for i in 0..privates.len() {
        for j in (i + 1)..privates.len() {
            if privates[i].iter().any(|w| privates[j].contains(w)) {
                return false;
            }
        }
    }
    true
}

/// Number of *other* policies whose settings overlap this policy's boosted
/// setting (its sharing degree). Conjecture 2: when every policy reserves
/// private cache, this is at most 2.
pub fn sharing_degree(policy: &ShortTermPolicy, others: &[ShortTermPolicy]) -> usize {
    others
        .iter()
        .filter(|o| {
            policy.boosted.overlap(&o.boosted) > 0 || policy.boosted.overlap(&o.default) > 0
        })
        .count()
}

/// Validate Conjecture 2 over a policy set in which every policy has a
/// non-empty private region.
pub fn sharing_degree_bounded(policies: &[ShortTermPolicy]) -> bool {
    (0..policies.len()).all(|i| {
        let others: Vec<ShortTermPolicy> = policies
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, p)| *p)
            .collect();
        if private_ways(&policies[i], &others).is_empty() {
            // premise violated: conjecture only constrains policies with
            // private reservations
            return true;
        }
        sharing_degree(&policies[i], &others) <= 2
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_layout() {
        // "Jacobi could reserve private cache lines #1 & #2 and BFS could
        // reserve cache lines #5 & #6 ... either or both services could use
        // cache lines 3 & 4" (0-indexed here: 0-1, 4-5 private; 2-3 shared)
        let l = PairLayout::symmetric(2, 2);
        assert_eq!(l.total_ways(), 6);
        assert_eq!(l.default_a(), AllocationSetting::new(0, 2));
        assert_eq!(l.boosted_a(), AllocationSetting::new(0, 4));
        assert_eq!(l.default_b(), AllocationSetting::new(4, 2));
        assert_eq!(l.boosted_b(), AllocationSetting::new(2, 4));
    }

    #[test]
    fn pair_masks_are_contiguous_and_valid() {
        let l = PairLayout::symmetric(2, 2);
        for s in [l.default_a(), l.boosted_a(), l.default_b(), l.boosted_b()] {
            assert!(s.to_cbm(l.total_ways()).is_ok(), "{s} must be valid CBM");
        }
    }

    #[test]
    fn pair_boosts_overlap_only_in_shared_region() {
        let l = PairLayout::symmetric(2, 2);
        assert_eq!(l.boosted_a().overlap(&l.boosted_b()), 2);
        assert_eq!(l.default_a().overlap(&l.default_b()), 0);
        assert_eq!(l.default_a().overlap(&l.boosted_b()), 0);
        assert_eq!(l.boosted_a().overlap(&l.default_b()), 0);
    }

    #[test]
    fn pair_private_regions_disjoint() {
        let l = PairLayout::symmetric(2, 2);
        let (pa, pb) = l.policies(1.0, 2.0);
        assert!(private_regions_disjoint(&[pa, pb]));
        assert_eq!(private_ways(&pa, &[pb]), vec![0, 1]);
        assert_eq!(private_ways(&pb, &[pa]), vec![4, 5]);
    }

    #[test]
    fn chain_layout_structure() {
        let c = ChainLayout::new(3, 2, 2);
        assert_eq!(c.total_ways(), 10);
        assert_eq!(c.default_of(0), AllocationSetting::new(0, 2));
        assert_eq!(c.default_of(1), AllocationSetting::new(4, 2));
        assert_eq!(c.default_of(2), AllocationSetting::new(8, 2));
        // edge workloads extend one way-region, interior extends both
        assert_eq!(c.boosted_of(0), AllocationSetting::new(0, 4));
        assert_eq!(c.boosted_of(1), AllocationSetting::new(2, 6));
        assert_eq!(c.boosted_of(2), AllocationSetting::new(6, 4));
    }

    #[test]
    fn chain_satisfies_both_conjectures() {
        for n in 2..6 {
            let c = ChainLayout::new(n, 2, 1);
            let ps = c.policies(1.0);
            assert!(private_regions_disjoint(&ps), "n={n}");
            assert!(sharing_degree_bounded(&ps), "n={n}");
        }
    }

    #[test]
    fn interior_chain_workload_shares_with_exactly_two() {
        let c = ChainLayout::new(4, 2, 1);
        let ps = c.policies(1.0);
        let others: Vec<ShortTermPolicy> = ps
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != 1)
            .map(|(_, p)| *p)
            .collect();
        assert_eq!(sharing_degree(&ps[1], &others), 2);
    }

    #[test]
    fn edge_chain_workload_shares_with_one() {
        let c = ChainLayout::new(4, 2, 1);
        let ps = c.policies(1.0);
        let others: Vec<ShortTermPolicy> = ps[1..].to_vec();
        assert_eq!(sharing_degree(&ps[0], &others), 1);
    }

    #[test]
    fn fully_shared_covers_everything() {
        let l = PairLayout::symmetric(2, 2);
        let f = l.fully_shared();
        assert_eq!(f.length, 6);
        assert!(f.contains(&l.boosted_a()));
        assert!(f.contains(&l.boosted_b()));
    }

    #[test]
    fn experiment_layout_dispatch() {
        let pair = ExperimentLayout::pair_symmetric(2, 2);
        assert_eq!(pair.workloads(), 2);
        assert_eq!(pair.total_ways(), 6);
        assert_eq!(pair.default_of(1).unwrap(), AllocationSetting::new(4, 2));
        assert!(matches!(
            pair.default_of(2),
            Err(CatError::WorkloadIndex {
                index: 2,
                workloads: 2
            })
        ));
        assert!(matches!(
            pair.boosted_of(9),
            Err(CatError::WorkloadIndex { index: 9, .. })
        ));
        let ps = pair.policies(&[1.0, 2.0]);
        assert_eq!(ps[0].timeout_ratio, 1.0);
        assert_eq!(ps[1].timeout_ratio, 2.0);
        let chain = ExperimentLayout::Chain(ChainLayout::new(4, 2, 1));
        assert_eq!(chain.workloads(), 4);
        assert_eq!(chain.policies(&[1.0; 4]).len(), 4);
        let statics = chain.static_policies();
        assert!(statics.iter().all(|p| !p.boost_enabled()));
        assert!(private_regions_disjoint(&chain.policies(&[0.5; 4])));
    }

    #[test]
    #[should_panic(expected = "one timeout per workload")]
    fn experiment_layout_timeout_arity() {
        ExperimentLayout::pair_symmetric(2, 2).policies(&[1.0]);
    }

    #[test]
    fn asymmetric_pair() {
        let l = PairLayout {
            base_way: 4,
            private_a: 3,
            shared: 2,
            private_b: 1,
        };
        assert_eq!(l.default_a(), AllocationSetting::new(4, 3));
        assert_eq!(l.boosted_a(), AllocationSetting::new(4, 5));
        assert_eq!(l.default_b(), AllocationSetting::new(9, 1));
        assert_eq!(l.boosted_b(), AllocationSetting::new(7, 3));
        let (pa, pb) = l.policies(0.5, 0.5);
        assert!(private_regions_disjoint(&[pa, pb]));
    }
}
