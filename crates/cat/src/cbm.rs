//! Capacity bitmasks — the unit of cache allocation in CAT.
//!
//! A CBM marks which LLC ways a class of service may *fill into*. Intel CAT
//! requires the set bits to be contiguous; the hardware rejects writes of
//! non-contiguous masks to the `IA32_L3_MASK_n` MSRs, and this type enforces
//! the same rule at construction.

use crate::CatError;

/// A validated, contiguous capacity bitmask over up to 64 cache ways.
///
/// Bit `i` set means way `i` may be used as a fill victim by the owning COS.
/// Hits are not restricted by the mask — that matches CAT semantics, where a
/// line already resident in a foreign way still hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CapacityBitmask {
    bits: u64,
    ways: u8,
}

impl CapacityBitmask {
    /// Validate and wrap a raw mask for a cache with `ways` ways.
    pub fn new(bits: u64, ways: usize) -> Result<Self, CatError> {
        assert!((1..=64).contains(&ways), "way count must be 1..=64");
        if bits == 0 {
            return Err(CatError::EmptyMask);
        }
        let highest = 63 - bits.leading_zeros() as usize;
        if highest >= ways {
            return Err(CatError::OutOfRange {
                ways,
                highest_bit: highest,
            });
        }
        // Contiguity: after shifting out trailing zeros, the mask must be
        // all-ones up to its width.
        let shifted = bits >> bits.trailing_zeros();
        if (shifted & shifted.wrapping_add(1)) != 0 {
            return Err(CatError::NonContiguous);
        }
        Ok(CapacityBitmask {
            bits,
            ways: ways as u8,
        })
    }

    /// Build from an `(offset, length)` allocation setting.
    pub fn from_span(offset: usize, length: usize, ways: usize) -> Result<Self, CatError> {
        if length == 0 {
            return Err(CatError::EmptyMask);
        }
        if offset + length > ways {
            return Err(CatError::OutOfRange {
                ways,
                highest_bit: offset + length - 1,
            });
        }
        let bits = if length == 64 {
            u64::MAX
        } else {
            ((1u64 << length) - 1) << offset
        };
        Ok(CapacityBitmask {
            bits,
            ways: ways as u8,
        })
    }

    /// Mask covering every way of the cache. Way counts are clamped into the
    /// hardware's 1..=64 range, so construction cannot fail.
    pub fn full(ways: usize) -> Self {
        let ways = ways.clamp(1, 64);
        let bits = if ways == 64 {
            u64::MAX
        } else {
            (1u64 << ways) - 1
        };
        CapacityBitmask {
            bits,
            ways: ways as u8,
        }
    }

    /// Raw bit pattern.
    #[inline]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Way count of the cache this mask was validated against.
    #[inline]
    pub fn cache_ways(&self) -> usize {
        self.ways as usize
    }

    /// Lowest way index covered (the `offset` of the span).
    #[inline]
    pub fn offset(&self) -> usize {
        self.bits.trailing_zeros() as usize
    }

    /// Number of ways covered (the `length` of the span).
    #[inline]
    pub fn length(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Whether way `w` is covered.
    #[inline]
    pub fn covers(&self, w: usize) -> bool {
        w < 64 && (self.bits >> w) & 1 == 1
    }

    /// Whether the two masks share any way.
    #[inline]
    pub fn overlaps(&self, other: &CapacityBitmask) -> bool {
        self.bits & other.bits != 0
    }

    /// Number of ways shared with `other`.
    #[inline]
    pub fn overlap_ways(&self, other: &CapacityBitmask) -> usize {
        (self.bits & other.bits).count_ones() as usize
    }

    /// Whether `other` is entirely contained in this mask.
    #[inline]
    pub fn contains(&self, other: &CapacityBitmask) -> bool {
        self.bits & other.bits == other.bits
    }

    /// Iterator over covered way indices, ascending.
    pub fn iter_ways(&self) -> impl Iterator<Item = usize> + '_ {
        let bits = self.bits;
        (0..self.ways as usize).filter(move |&w| (bits >> w) & 1 == 1)
    }

    /// Hex rendering as used by `resctrl` schemata (lowercase, no prefix).
    pub fn to_hex(&self) -> String {
        format!("{:x}", self.bits)
    }

    /// Parse a hex schemata token and validate against `ways`.
    pub fn from_hex(s: &str, ways: usize) -> Result<Self, CatError> {
        let bits = u64::from_str_radix(s.trim(), 16)
            .map_err(|e| CatError::Parse(format!("bad mask {s:?}: {e}")))?;
        CapacityBitmask::new(bits, ways)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_masks_accepted() {
        for (bits, ways) in [
            (0b1u64, 4),
            (0b1100, 4),
            (0xF, 4),
            (0xFF00, 16),
            (u64::MAX, 64),
        ] {
            assert!(CapacityBitmask::new(bits, ways).is_ok(), "{bits:#x}");
        }
    }

    #[test]
    fn non_contiguous_rejected() {
        assert_eq!(CapacityBitmask::new(0b101, 4), Err(CatError::NonContiguous));
        assert_eq!(
            CapacityBitmask::new(0b10011, 8),
            Err(CatError::NonContiguous)
        );
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(CapacityBitmask::new(0, 4), Err(CatError::EmptyMask));
        assert_eq!(
            CapacityBitmask::from_span(2, 0, 8),
            Err(CatError::EmptyMask)
        );
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(matches!(
            CapacityBitmask::new(0b1_0000, 4),
            Err(CatError::OutOfRange {
                ways: 4,
                highest_bit: 4
            })
        ));
        assert!(CapacityBitmask::from_span(3, 2, 4).is_err());
    }

    #[test]
    fn span_roundtrip() {
        let m = CapacityBitmask::from_span(2, 3, 8).expect("valid");
        assert_eq!(m.offset(), 2);
        assert_eq!(m.length(), 3);
        assert_eq!(m.bits(), 0b11100);
        assert!(m.covers(2) && m.covers(3) && m.covers(4));
        assert!(!m.covers(1) && !m.covers(5));
    }

    #[test]
    fn overlap_logic() {
        let a = CapacityBitmask::from_span(0, 4, 8).expect("valid");
        let b = CapacityBitmask::from_span(2, 4, 8).expect("valid");
        let c = CapacityBitmask::from_span(6, 2, 8).expect("valid");
        assert!(a.overlaps(&b));
        assert_eq!(a.overlap_ways(&b), 2);
        assert!(!a.overlaps(&c));
        assert!(!b.overlaps(&c), "b covers 2..=5, c covers 6..=7");
        assert_eq!(b.overlap_ways(&c), 0);
    }

    #[test]
    fn contains_logic() {
        let big = CapacityBitmask::from_span(0, 6, 8).expect("valid");
        let small = CapacityBitmask::from_span(1, 3, 8).expect("valid");
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
    }

    #[test]
    fn full_mask() {
        let m = CapacityBitmask::full(20);
        assert_eq!(m.length(), 20);
        assert_eq!(m.offset(), 0);
    }

    #[test]
    fn hex_roundtrip() {
        let m = CapacityBitmask::from_span(4, 4, 16).expect("valid");
        assert_eq!(m.to_hex(), "f0");
        let parsed = CapacityBitmask::from_hex("f0", 16).expect("parses");
        assert_eq!(parsed, m);
    }

    #[test]
    fn hex_parse_errors() {
        assert!(matches!(
            CapacityBitmask::from_hex("zz", 8),
            Err(CatError::Parse(_))
        ));
        assert_eq!(CapacityBitmask::from_hex("0", 8), Err(CatError::EmptyMask));
    }

    #[test]
    fn iter_ways_ascending() {
        let m = CapacityBitmask::from_span(3, 3, 8).expect("valid");
        assert_eq!(m.iter_ways().collect::<Vec<_>>(), vec![3, 4, 5]);
    }

    #[test]
    fn sixty_four_way_full() {
        let m = CapacityBitmask::full(64);
        assert_eq!(m.length(), 64);
        assert_eq!(m.bits(), u64::MAX);
    }
}
