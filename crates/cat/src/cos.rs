//! Class-of-service tables.
//!
//! CAT hardware exposes a small number of classes of service (4–16 on the
//! Xeons the paper used). Systems software installs one CBM per COS and then
//! tags each logical workload (process/container) with a COS. The paper's
//! proxy services switch a workload's COS between its *default* and
//! *short-term* class when a query times out (§4).

use crate::cbm::CapacityBitmask;
use crate::CatError;

/// Identifier of a hardware class of service.
pub type CosId = u16;

/// Identifier of a bound workload (one per collocated service).
pub type WorkloadId = u32;

/// The COS table: per-class masks plus workload → COS bindings.
///
/// Mirrors the MSR-level interface: a fixed number of classes, each holding a
/// validated contiguous mask; mutating a class takes effect for every
/// workload bound to it (the paper exploits this to boost all outstanding
/// queries of a service at once with one register write).
#[derive(Debug, Clone)]
pub struct CosTable {
    ways: usize,
    masks: Vec<CapacityBitmask>,
    bindings: Vec<(WorkloadId, CosId)>,
    /// Count of COS mask rewrites — real systems care because MSR writes
    /// are serializing; the profiler reports this as switch overhead.
    writes: u64,
}

impl CosTable {
    /// Create a table with `classes` classes for a `ways`-way cache. All
    /// classes start with the full mask, as hardware does at reset.
    pub fn new(classes: u16, ways: usize) -> Self {
        assert!(classes >= 1, "at least one class of service required");
        CosTable {
            ways,
            masks: vec![CapacityBitmask::full(ways); classes as usize],
            bindings: Vec::new(),
            writes: 0,
        }
    }

    /// Number of classes supported.
    pub fn classes(&self) -> u16 {
        self.masks.len() as u16
    }

    /// Cache way count the table was built for.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Install a mask for a class. Fails if the COS id is out of range.
    pub fn set_mask(&mut self, cos: CosId, mask: CapacityBitmask) -> Result<(), CatError> {
        let idx = cos as usize;
        if idx >= self.masks.len() {
            return Err(CatError::CosOutOfRange {
                max: self.classes() - 1,
                requested: cos,
            });
        }
        assert_eq!(
            mask.cache_ways(),
            self.ways,
            "mask validated for a different cache"
        );
        self.masks[idx] = mask;
        self.writes += 1;
        Ok(())
    }

    /// Read the mask installed for a class.
    pub fn mask(&self, cos: CosId) -> Result<CapacityBitmask, CatError> {
        self.masks
            .get(cos as usize)
            .copied()
            .ok_or(CatError::UnknownCos(cos))
    }

    /// Bind a workload to a class (rebinding moves it).
    pub fn bind(&mut self, workload: WorkloadId, cos: CosId) -> Result<(), CatError> {
        if cos as usize >= self.masks.len() {
            return Err(CatError::CosOutOfRange {
                max: self.classes() - 1,
                requested: cos,
            });
        }
        if let Some(entry) = self.bindings.iter_mut().find(|(w, _)| *w == workload) {
            entry.1 = cos;
        } else {
            self.bindings.push((workload, cos));
        }
        Ok(())
    }

    /// COS a workload is currently bound to (COS 0 — the default class — if
    /// never bound, which is what hardware does for untagged processes).
    pub fn cos_of(&self, workload: WorkloadId) -> CosId {
        self.bindings
            .iter()
            .find(|(w, _)| *w == workload)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// Effective fill mask for a workload.
    pub fn effective_mask(&self, workload: WorkloadId) -> CapacityBitmask {
        self.masks[self.cos_of(workload) as usize]
    }

    /// Workloads currently bound to a class.
    pub fn workloads_in(&self, cos: CosId) -> Vec<WorkloadId> {
        self.bindings
            .iter()
            .filter(|(_, c)| *c == cos)
            .map(|(w, _)| *w)
            .collect()
    }

    /// Total mask-rewrite count (MSR write analogue).
    pub fn write_count(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::AllocationSetting;

    fn mask(o: usize, l: usize) -> CapacityBitmask {
        AllocationSetting::new(o, l).to_cbm(16).expect("valid")
    }

    #[test]
    fn reset_state_is_full_masks() {
        let t = CosTable::new(4, 16);
        for cos in 0..4 {
            assert_eq!(t.mask(cos).expect("exists").length(), 16);
        }
    }

    #[test]
    fn set_and_read_mask() {
        let mut t = CosTable::new(4, 16);
        t.set_mask(1, mask(0, 4)).expect("in range");
        assert_eq!(t.mask(1).expect("exists").offset(), 0);
        assert_eq!(t.mask(1).expect("exists").length(), 4);
        assert_eq!(t.write_count(), 1);
    }

    #[test]
    fn cos_out_of_range() {
        let mut t = CosTable::new(2, 16);
        assert!(matches!(
            t.set_mask(5, mask(0, 1)),
            Err(CatError::CosOutOfRange {
                max: 1,
                requested: 5
            })
        ));
        assert!(t.bind(7, 3).is_err());
    }

    #[test]
    fn binding_and_rebinding() {
        let mut t = CosTable::new(4, 16);
        t.bind(100, 1).expect("ok");
        assert_eq!(t.cos_of(100), 1);
        t.bind(100, 2).expect("ok");
        assert_eq!(t.cos_of(100), 2);
        assert_eq!(t.workloads_in(1), Vec::<WorkloadId>::new());
        assert_eq!(t.workloads_in(2), vec![100]);
    }

    #[test]
    fn unbound_workload_defaults_to_cos0() {
        let t = CosTable::new(4, 16);
        assert_eq!(t.cos_of(999), 0);
        assert_eq!(t.effective_mask(999).length(), 16);
    }

    #[test]
    fn effective_mask_tracks_class_rewrites() {
        let mut t = CosTable::new(4, 16);
        t.bind(1, 3).expect("ok");
        t.set_mask(3, mask(4, 4)).expect("ok");
        assert_eq!(t.effective_mask(1).offset(), 4);
        // rewriting the class changes every bound workload at once
        t.set_mask(3, mask(4, 8)).expect("ok");
        assert_eq!(t.effective_mask(1).length(), 8);
    }

    #[test]
    #[should_panic(expected = "different cache")]
    fn mask_for_wrong_cache_panics() {
        let mut t = CosTable::new(2, 16);
        let wrong = AllocationSetting::new(0, 2).to_cbm(8).expect("valid for 8");
        let _ = t.set_mask(0, wrong);
    }
}
