//! # stca-cat
//!
//! A faithful, in-memory model of Intel Cache Allocation Technology (CAT) as
//! used by the paper (§2). Real deployments program MSRs (or Linux `resctrl`)
//! to install *capacity bitmasks* (CBMs) per *class of service* (COS); this
//! crate reproduces that interface and its rules so the policy layer above it
//! exercises the same code path it would against hardware:
//!
//! * [`cbm::CapacityBitmask`] — per-COS way mask, **contiguous** as CAT
//!   requires, with validation;
//! * [`allocation::AllocationSetting`] — the paper's `(offset, length)` pair;
//! * [`cos::CosTable`] — COS id → CBM table plus workload → COS bindings;
//! * [`stap::ShortTermPolicy`] — the paper's `(a, a', t)` triple: a default
//!   setting, a boosted setting, and a timeout expressed relative to mean
//!   service time (Eq. 4);
//! * [`layout::PairLayout`] — the pairwise private/shared way layout the
//!   evaluation uses (private #1–2, shared #3–4, private #5–6), with checks
//!   for the two conjectures in §2 (private regions are disjoint; a setting
//!   shares cache with at most two others);
//! * [`resctrl`] — a simulated `resctrl` filesystem binding (schemata strings)
//!   so tooling written against the kernel interface can be tested offline.

#![warn(clippy::unwrap_used)]

pub mod allocation;
pub mod cbm;
pub mod cos;
pub mod layout;
pub mod resctrl;
pub mod stap;

pub use allocation::AllocationSetting;
pub use cbm::CapacityBitmask;
pub use cos::{CosId, CosTable};
pub use layout::PairLayout;
pub use stap::ShortTermPolicy;

/// Errors surfaced by the CAT model. Mirrors the failure modes of the real
/// interface: non-contiguous masks, empty masks, masks wider than the cache,
/// and COS ids beyond the hardware-supported count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatError {
    /// The bitmask had zero bits set. CAT requires at least one way.
    EmptyMask,
    /// The set bits were not contiguous (CAT hardware rejects these).
    NonContiguous,
    /// The mask referenced ways beyond the cache's way count.
    OutOfRange { ways: usize, highest_bit: usize },
    /// COS id not provisioned in the table.
    UnknownCos(u16),
    /// COS id exceeds the supported class count.
    CosOutOfRange { max: u16, requested: u16 },
    /// A schemata string failed to parse.
    Parse(String),
    /// A workload index beyond the layout's workload count.
    WorkloadIndex { index: usize, workloads: usize },
}

impl std::fmt::Display for CatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatError::EmptyMask => write!(f, "capacity bitmask must have at least one way"),
            CatError::NonContiguous => write!(f, "capacity bitmask must be contiguous"),
            CatError::OutOfRange { ways, highest_bit } => {
                write!(f, "bit {highest_bit} out of range for {ways}-way cache")
            }
            CatError::UnknownCos(id) => write!(f, "class of service {id} not provisioned"),
            CatError::CosOutOfRange { max, requested } => {
                write!(f, "COS {requested} exceeds supported classes ({max})")
            }
            CatError::Parse(msg) => write!(f, "schemata parse error: {msg}"),
            CatError::WorkloadIndex { index, workloads } => {
                write!(
                    f,
                    "workload index {index} out of range for {workloads}-workload layout"
                )
            }
        }
    }
}

impl std::error::Error for CatError {}
