//! A simulated Linux `resctrl` binding.
//!
//! On real hardware the paper's tooling (Intel's `pqos`) programs CAT either
//! through MSRs or through the kernel's `resctrl` filesystem, where each
//! resource group has a `schemata` file like `L3:0=3;1=ff0`. This module
//! reproduces that interface in memory: schemata parsing/formatting, resource
//! groups with task (workload) membership, and commit-to-COS-table semantics.
//! Code written against this module would need only an I/O shim to drive the
//! real filesystem.

use crate::cbm::CapacityBitmask;
use crate::cos::{CosId, CosTable, WorkloadId};
use crate::CatError;
use std::collections::BTreeMap;

/// One L3 schemata line: per-cache-domain masks, e.g. `L3:0=3;1=ff0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schemata {
    /// Masks keyed by cache domain (socket) id.
    pub domains: BTreeMap<u32, CapacityBitmask>,
}

impl Schemata {
    /// Single-domain schemata (domain 0).
    pub fn single(mask: CapacityBitmask) -> Self {
        let mut domains = BTreeMap::new();
        domains.insert(0, mask);
        Schemata { domains }
    }

    /// Parse an `L3:` schemata line. `ways` validates each mask.
    pub fn parse(line: &str, ways: usize) -> Result<Self, CatError> {
        let line = line.trim();
        let body = line
            .strip_prefix("L3:")
            .ok_or_else(|| CatError::Parse(format!("missing L3: prefix in {line:?}")))?;
        let mut domains = BTreeMap::new();
        for part in body.split(';') {
            let (dom, mask) = part
                .split_once('=')
                .ok_or_else(|| CatError::Parse(format!("missing '=' in {part:?}")))?;
            let dom: u32 = dom
                .trim()
                .parse()
                .map_err(|e| CatError::Parse(format!("bad domain {dom:?}: {e}")))?;
            let mask = CapacityBitmask::from_hex(mask, ways)?;
            if domains.insert(dom, mask).is_some() {
                return Err(CatError::Parse(format!("duplicate domain {dom}")));
            }
        }
        if domains.is_empty() {
            return Err(CatError::Parse("no domains".into()));
        }
        Ok(Schemata { domains })
    }

    /// Format back to the kernel's line format.
    pub fn format(&self) -> String {
        let parts: Vec<String> = self
            .domains
            .iter()
            .map(|(dom, mask)| format!("{}={}", dom, mask.to_hex()))
            .collect();
        format!("L3:{}", parts.join(";"))
    }

    /// Mask for domain 0 (the common single-socket case).
    pub fn domain0(&self) -> Option<CapacityBitmask> {
        self.domains.get(&0).copied()
    }
}

/// A resctrl resource group: a named directory with a schemata and a task
/// list. Group index maps 1:1 onto a hardware COS.
#[derive(Debug, Clone)]
pub struct ResourceGroup {
    /// Directory name (e.g. `redis-default`).
    pub name: String,
    /// Current schemata.
    pub schemata: Schemata,
    /// Workloads (task groups) assigned to this group.
    pub tasks: Vec<WorkloadId>,
}

/// The simulated resctrl root: a set of resource groups bound to a COS table.
#[derive(Debug)]
pub struct ResctrlFs {
    ways: usize,
    groups: Vec<ResourceGroup>,
    max_groups: usize,
}

impl ResctrlFs {
    /// Mount a simulated resctrl with the given hardware limits. The default
    /// group (COS 0) is created automatically with a full mask, as the kernel
    /// does.
    pub fn mount(ways: usize, max_groups: usize) -> Self {
        assert!(max_groups >= 1);
        let root = ResourceGroup {
            name: ".".into(),
            schemata: Schemata::single(CapacityBitmask::full(ways)),
            tasks: Vec::new(),
        };
        ResctrlFs {
            ways,
            groups: vec![root],
            max_groups,
        }
    }

    /// Create a new resource group. Fails when hardware COS are exhausted —
    /// the same `ENOSPC` the kernel returns.
    pub fn mkdir(&mut self, name: &str) -> Result<CosId, CatError> {
        if self.groups.len() >= self.max_groups {
            return Err(CatError::CosOutOfRange {
                max: self.max_groups as u16 - 1,
                requested: self.groups.len() as u16,
            });
        }
        if self.groups.iter().any(|g| g.name == name) {
            return Err(CatError::Parse(format!("group {name:?} exists")));
        }
        self.groups.push(ResourceGroup {
            name: name.into(),
            schemata: Schemata::single(CapacityBitmask::full(self.ways)),
            tasks: Vec::new(),
        });
        Ok((self.groups.len() - 1) as CosId)
    }

    /// Write a schemata line into a group.
    pub fn write_schemata(&mut self, group: CosId, line: &str) -> Result<(), CatError> {
        let schemata = Schemata::parse(line, self.ways)?;
        let g = self
            .groups
            .get_mut(group as usize)
            .ok_or(CatError::UnknownCos(group))?;
        g.schemata = schemata;
        Ok(())
    }

    /// Read a group's schemata line.
    pub fn read_schemata(&self, group: CosId) -> Result<String, CatError> {
        self.groups
            .get(group as usize)
            .map(|g| g.schemata.format())
            .ok_or(CatError::UnknownCos(group))
    }

    /// Move a workload into a group (the `tasks` file). Removes it from any
    /// other group first, as writing a PID to `tasks` does.
    pub fn assign_task(&mut self, group: CosId, task: WorkloadId) -> Result<(), CatError> {
        if group as usize >= self.groups.len() {
            return Err(CatError::UnknownCos(group));
        }
        for g in &mut self.groups {
            g.tasks.retain(|&t| t != task);
        }
        self.groups[group as usize].tasks.push(task);
        Ok(())
    }

    /// Group a task currently belongs to (default group if never assigned).
    pub fn group_of(&self, task: WorkloadId) -> CosId {
        self.groups
            .iter()
            .position(|g| g.tasks.contains(&task))
            .unwrap_or(0) as CosId
    }

    /// Commit the filesystem state into a hardware COS table: one COS per
    /// group (domain 0 masks), with task bindings.
    pub fn commit(&self) -> Result<CosTable, CatError> {
        let mut table = CosTable::new(self.max_groups as u16, self.ways);
        for (idx, g) in self.groups.iter().enumerate() {
            let mask = g
                .schemata
                .domain0()
                .ok_or_else(|| CatError::Parse(format!("group {} lacks domain 0", g.name)))?;
            table.set_mask(idx as CosId, mask)?;
            for &t in &g.tasks {
                table.bind(t, idx as CosId)?;
            }
        }
        Ok(table)
    }

    /// Group count (including the default group).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemata_parse_format_roundtrip() {
        let s = Schemata::parse("L3:0=3;1=ff0", 16).expect("parses");
        assert_eq!(s.domains.len(), 2);
        assert_eq!(s.format(), "L3:0=3;1=ff0");
        assert_eq!(s.domain0().expect("dom0").length(), 2);
    }

    #[test]
    fn schemata_rejects_garbage() {
        assert!(Schemata::parse("MB:0=10", 16).is_err());
        assert!(Schemata::parse("L3:0", 16).is_err());
        assert!(Schemata::parse("L3:x=3", 16).is_err());
        assert!(
            Schemata::parse("L3:0=3;0=7", 16).is_err(),
            "duplicate domain"
        );
        assert!(
            Schemata::parse("L3:0=5", 16).is_err(),
            "non-contiguous mask"
        );
    }

    #[test]
    fn mkdir_respects_cos_limit() {
        let mut fs = ResctrlFs::mount(16, 3);
        fs.mkdir("a").expect("ok");
        fs.mkdir("b").expect("ok");
        assert!(fs.mkdir("c").is_err(), "COS exhausted");
    }

    #[test]
    fn duplicate_group_name_rejected() {
        let mut fs = ResctrlFs::mount(16, 4);
        fs.mkdir("a").expect("ok");
        assert!(fs.mkdir("a").is_err());
    }

    #[test]
    fn task_assignment_moves_between_groups() {
        let mut fs = ResctrlFs::mount(16, 4);
        let a = fs.mkdir("a").expect("ok");
        let b = fs.mkdir("b").expect("ok");
        fs.assign_task(a, 42).expect("ok");
        assert_eq!(fs.group_of(42), a);
        fs.assign_task(b, 42).expect("ok");
        assert_eq!(fs.group_of(42), b);
        // no longer in group a
        assert!(fs.commit().expect("ok").workloads_in(a).is_empty());
    }

    #[test]
    fn commit_builds_matching_cos_table() {
        let mut fs = ResctrlFs::mount(16, 4);
        let g = fs.mkdir("redis").expect("ok");
        fs.write_schemata(g, "L3:0=f0").expect("ok");
        fs.assign_task(g, 7).expect("ok");
        let table = fs.commit().expect("ok");
        assert_eq!(table.effective_mask(7).offset(), 4);
        assert_eq!(table.effective_mask(7).length(), 4);
        // unassigned task falls into the default group with a full mask
        assert_eq!(table.effective_mask(99).length(), 16);
    }

    #[test]
    fn commit_requires_domain_zero() {
        let mut fs = ResctrlFs::mount(16, 4);
        let g = fs.mkdir("multi").expect("ok");
        fs.write_schemata(g, "L3:1=f").expect("parses fine");
        assert!(matches!(fs.commit(), Err(CatError::Parse(_))));
    }

    #[test]
    fn multi_domain_schemata_survive_roundtrip() {
        let mut fs = ResctrlFs::mount(16, 4);
        let g = fs.mkdir("two-socket").expect("ok");
        fs.write_schemata(g, "L3:0=3;1=ff").expect("ok");
        assert_eq!(fs.read_schemata(g).expect("ok"), "L3:0=3;1=ff");
    }

    #[test]
    fn write_schemata_unknown_group() {
        let mut fs = ResctrlFs::mount(16, 4);
        assert!(matches!(
            fs.write_schemata(9, "L3:0=1"),
            Err(CatError::UnknownCos(9))
        ));
    }
}
