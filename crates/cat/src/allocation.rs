//! Allocation settings — the paper's `(offset, length)` representation.
//!
//! §2 of the paper represents each contiguous allocation as an ordered pair
//! `(o_a, l_a)`. This type is the bridge between the paper's notation and the
//! bitmask the hardware actually consumes.

use crate::cbm::CapacityBitmask;
use crate::CatError;

/// A contiguous cache-way allocation: ways `[offset, offset + length)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocationSetting {
    /// First way covered.
    pub offset: usize,
    /// Number of ways covered (>= 1 for a valid setting).
    pub length: usize,
}

impl AllocationSetting {
    /// Construct without validation; validate against a cache via
    /// [`AllocationSetting::to_cbm`].
    pub const fn new(offset: usize, length: usize) -> Self {
        AllocationSetting { offset, length }
    }

    /// Convert to a validated bitmask for a cache with `ways` ways.
    pub fn to_cbm(&self, ways: usize) -> Result<CapacityBitmask, CatError> {
        CapacityBitmask::from_span(self.offset, self.length, ways)
    }

    /// Recover the setting from a contiguous bitmask.
    pub fn from_cbm(cbm: &CapacityBitmask) -> Self {
        AllocationSetting {
            offset: cbm.offset(),
            length: cbm.length(),
        }
    }

    /// Exclusive end way.
    #[inline]
    pub fn end(&self) -> usize {
        self.offset + self.length
    }

    /// Whether way `w` falls inside the setting.
    #[inline]
    pub fn covers(&self, w: usize) -> bool {
        w >= self.offset && w < self.end()
    }

    /// Ways shared with another setting.
    pub fn overlap(&self, other: &AllocationSetting) -> usize {
        let lo = self.offset.max(other.offset);
        let hi = self.end().min(other.end());
        hi.saturating_sub(lo)
    }

    /// Whether the other setting is fully contained in this one.
    pub fn contains(&self, other: &AllocationSetting) -> bool {
        other.offset >= self.offset && other.end() <= self.end()
    }

    /// The gross increase in allocation when switching `self -> boosted`,
    /// i.e. `l_a' / l_a` — the denominator of effective cache allocation
    /// (Eq. 3 of the paper).
    pub fn allocation_ratio(&self, boosted: &AllocationSetting) -> f64 {
        assert!(self.length > 0, "default setting must be non-empty");
        boosted.length as f64 / self.length as f64
    }
}

impl std::fmt::Display for AllocationSetting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(o={}, l={})", self.offset, self.length)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbm_roundtrip() {
        let a = AllocationSetting::new(2, 4);
        let cbm = a.to_cbm(8).expect("valid");
        assert_eq!(AllocationSetting::from_cbm(&cbm), a);
    }

    #[test]
    fn invalid_settings_fail_conversion() {
        assert!(AllocationSetting::new(6, 4).to_cbm(8).is_err());
        assert!(AllocationSetting::new(0, 0).to_cbm(8).is_err());
    }

    #[test]
    fn overlap_computation() {
        let a = AllocationSetting::new(0, 4);
        let b = AllocationSetting::new(2, 4);
        let c = AllocationSetting::new(4, 2);
        assert_eq!(a.overlap(&b), 2);
        assert_eq!(a.overlap(&c), 0);
        assert_eq!(b.overlap(&c), 2);
        assert_eq!(a.overlap(&a), 4);
    }

    #[test]
    fn containment() {
        let outer = AllocationSetting::new(1, 5);
        let inner = AllocationSetting::new(2, 2);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains(&outer));
    }

    #[test]
    fn allocation_ratio_matches_eq3_denominator() {
        let dflt = AllocationSetting::new(0, 2);
        let boost = AllocationSetting::new(0, 4);
        assert!((dflt.allocation_ratio(&boost) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn covers_bounds() {
        let a = AllocationSetting::new(3, 2);
        assert!(!a.covers(2));
        assert!(a.covers(3));
        assert!(a.covers(4));
        assert!(!a.covers(5));
    }
}
