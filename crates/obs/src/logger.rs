//! Leveled, per-target-filtered logging with an env-style filter.
//!
//! The filter grammar mirrors `env_logger`: a comma-separated list of
//! `level` (sets the default) and `target=level` directives, e.g.
//! `STCA_LOG=info,queuesim=trace,deepforest=warn`. Targets are Rust module
//! paths (`stca_queuesim::simulator`); a directive matches when it is a
//! path prefix of the target, with the crate-name prefix `stca_` optional
//! so `queuesim=trace` matches `stca_queuesim::simulator`. Malformed
//! directives are ignored — bad input never panics.
//!
//! The *disabled* fast path is one relaxed atomic load ([`enabled_fast`]):
//! when the global max level is below the call site's level, no formatting,
//! locking, or target matching happens.

use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// A failure the run cannot fully recover from.
    Error = 1,
    /// Something suspicious that does not stop the run.
    Warn = 2,
    /// Progress milestones (default).
    Info = 3,
    /// Per-stage diagnostic detail.
    Debug = 4,
    /// Per-event detail in hot loops.
    Trace = 5,
}

impl Level {
    /// Uppercase name for the text format.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

/// A level threshold: `Off` or everything at or above a [`Level`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum LevelFilter {
    /// Nothing passes.
    Off = 0,
    /// Errors only.
    Error = 1,
    /// Warnings and errors.
    Warn = 2,
    /// Info and above.
    Info = 3,
    /// Debug and above.
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl LevelFilter {
    fn parse(s: &str) -> Option<LevelFilter> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Some(LevelFilter::Off),
            "error" => Some(LevelFilter::Error),
            "warn" | "warning" => Some(LevelFilter::Warn),
            "info" => Some(LevelFilter::Info),
            "debug" => Some(LevelFilter::Debug),
            "trace" => Some(LevelFilter::Trace),
            _ => None,
        }
    }

    /// Whether records at `level` pass this threshold.
    pub fn allows(self, level: Level) -> bool {
        level as u8 <= self as u8
    }
}

/// Output encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// `TIMESTAMP LEVEL target: message`.
    #[default]
    Text,
    /// One JSON object per line: `{"ts":...,"level":...,"target":...,"msg":...}`.
    Json,
}

/// Full logger configuration.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Default threshold when no directive matches.
    pub default: LevelFilter,
    /// `(target prefix, threshold)` directives; longest match wins.
    pub directives: Vec<(String, LevelFilter)>,
    /// Output encoding.
    pub format: LogFormat,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            default: LevelFilter::Off,
            directives: Vec::new(),
            format: LogFormat::Text,
        }
    }
}

/// One parsed filter directive.
enum Directive {
    /// A bare level: sets the default threshold.
    Default(LevelFilter),
    /// `target=level` (or a bare target, enabled fully).
    Target(String, LevelFilter),
}

/// A malformed `STCA_LOG` filter spec, with the offending directive and
/// why it was rejected. The CLI maps this to a usage error; `obs` cannot
/// name `StcaError` itself (the fault crate depends on this one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterError {
    /// The directive that failed to parse, verbatim.
    pub directive: String,
    /// What is wrong with it.
    pub reason: String,
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad STCA_LOG directive {:?}: {} (grammar: LEVEL or TARGET=LEVEL, \
             comma-separated; levels: off error warn info debug trace)",
            self.directive, self.reason
        )
    }
}

impl std::error::Error for FilterError {}

fn parse_directive(part: &str) -> Result<Directive, FilterError> {
    let err = |reason: &str| FilterError {
        directive: part.to_string(),
        reason: reason.to_string(),
    };
    match part.split_once('=') {
        None => match LevelFilter::parse(part) {
            Some(f) => Ok(Directive::Default(f)),
            // bare target with no level: enable fully
            None => Ok(Directive::Target(part.to_string(), LevelFilter::Trace)),
        },
        Some((target, level)) => {
            let target = target.trim();
            if target.is_empty() {
                return Err(err("empty target before '='"));
            }
            if level.contains('=') {
                return Err(err("more than one '='"));
            }
            match LevelFilter::parse(level) {
                Some(f) => Ok(Directive::Target(target.to_string(), f)),
                None => Err(err("unknown level after '='")),
            }
        }
    }
}

impl LogConfig {
    /// Parse an `STCA_LOG`-style filter spec, rejecting malformed
    /// directives with a typed [`FilterError`] instead of silently
    /// dropping them. An empty spec leaves the default at `Off`.
    pub fn try_parse(spec: &str) -> Result<LogConfig, FilterError> {
        let mut config = LogConfig::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_directive(part)? {
                Directive::Default(f) => config.default = f,
                Directive::Target(t, f) => config.directives.push((t, f)),
            }
        }
        Ok(config)
    }

    /// Lenient parse: malformed directives are skipped (legacy entry
    /// points that must never fail). Prefer [`LogConfig::try_parse`].
    pub fn parse(spec: &str) -> LogConfig {
        let mut config = LogConfig::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_directive(part) {
                Ok(Directive::Default(f)) => config.default = f,
                Ok(Directive::Target(t, f)) => config.directives.push((t, f)),
                Err(_) => {}
            }
        }
        config
    }

    /// The most permissive level any directive (or the default) allows —
    /// the global fast-path threshold.
    pub fn max_filter(&self) -> LevelFilter {
        self.directives
            .iter()
            .map(|(_, f)| *f)
            .chain(std::iter::once(self.default))
            .max()
            .unwrap_or(LevelFilter::Off)
    }

    /// The effective threshold for one target: the longest matching
    /// directive, else the default.
    pub fn filter_for(&self, target: &str) -> LevelFilter {
        let stripped = target.strip_prefix("stca_").unwrap_or(target);
        let mut best: Option<(usize, LevelFilter)> = None;
        for (prefix, filter) in &self.directives {
            let matches = |t: &str| {
                t == prefix
                    || (t.starts_with(prefix.as_str()) && t[prefix.len()..].starts_with(':'))
            };
            if matches(target) || matches(stripped) {
                let len = prefix.len();
                if best.is_none_or(|(l, _)| len > l) {
                    best = Some((len, *filter));
                }
            }
        }
        best.map(|(_, f)| f).unwrap_or(self.default)
    }
}

/// Where log lines go.
enum Sink {
    Stderr,
    /// Test capture buffer.
    Buffer(std::sync::Arc<Mutex<Vec<u8>>>),
}

struct LoggerState {
    config: LogConfig,
    sink: Sink,
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

fn state() -> &'static RwLock<LoggerState> {
    static STATE: OnceLock<RwLock<LoggerState>> = OnceLock::new();
    STATE.get_or_init(|| {
        RwLock::new(LoggerState {
            config: LogConfig::default(),
            sink: Sink::Stderr,
        })
    })
}

/// Install a configuration (tests and embedders; figure binaries use
/// [`init_from_env`]). Re-initialization is allowed and takes effect for
/// subsequent records.
pub fn init_with(config: LogConfig) {
    MAX_LEVEL.store(config.max_filter() as u8, Ordering::Release);
    state().write().expect("logger lock").config = config;
}

/// Initialize from `STCA_LOG` / `STCA_LOG_FORMAT`. Unset or malformed
/// input silently yields a quiet (errors-off) logger — never a panic.
pub fn init_from_env() {
    let mut config = match std::env::var("STCA_LOG") {
        Ok(spec) => LogConfig::parse(&spec),
        Err(_) => LogConfig::default(),
    };
    if let Ok(fmt) = std::env::var("STCA_LOG_FORMAT") {
        if fmt.eq_ignore_ascii_case("json") {
            config.format = LogFormat::Json;
        }
    }
    init_with(config);
}

/// Strict variant of [`init_from_env`]: a malformed `STCA_LOG` filter or
/// an unknown `STCA_LOG_FORMAT` is a typed error the caller can turn
/// into a usage failure, instead of silently defaulting.
pub fn try_init_from_env() -> Result<(), FilterError> {
    let mut config = match std::env::var("STCA_LOG") {
        Ok(spec) => LogConfig::try_parse(&spec)?,
        Err(_) => LogConfig::default(),
    };
    if let Ok(fmt) = std::env::var("STCA_LOG_FORMAT") {
        if fmt.eq_ignore_ascii_case("json") {
            config.format = LogFormat::Json;
        } else if !fmt.eq_ignore_ascii_case("text") {
            return Err(FilterError {
                directive: format!("STCA_LOG_FORMAT={fmt}"),
                reason: "unknown format (want text or json)".to_string(),
            });
        }
    }
    init_with(config);
    Ok(())
}

/// Virtual-clock "now" as `f64` bits; `NaN` bits = unset. The serving
/// loop advances this as its serial replay progresses so log lines can
/// carry the virtual timestamp of the decision they describe.
static VIRTUAL_NOW_BITS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(u64::MAX);

const VIRTUAL_UNSET: u64 = u64::MAX;

/// Publish the current virtual-clock time (seconds). Log lines emitted
/// while it is set include `vt=<seconds>s`.
pub fn set_virtual_now(seconds: f64) {
    VIRTUAL_NOW_BITS.store(seconds.to_bits(), Ordering::Relaxed);
}

/// Clear the virtual clock (back to wall-clock-only log lines).
pub fn clear_virtual_now() {
    VIRTUAL_NOW_BITS.store(VIRTUAL_UNSET, Ordering::Relaxed);
}

/// The published virtual-clock time, if one is set.
pub fn virtual_now() -> Option<f64> {
    let bits = VIRTUAL_NOW_BITS.load(Ordering::Relaxed);
    if bits == VIRTUAL_UNSET {
        None
    } else {
        Some(f64::from_bits(bits))
    }
}

/// Redirect output into a shared buffer (tests). Pass `None` for stderr.
pub fn set_sink(buffer: Option<std::sync::Arc<Mutex<Vec<u8>>>>) {
    state().write().expect("logger lock").sink = match buffer {
        Some(b) => Sink::Buffer(b),
        None => Sink::Stderr,
    };
}

/// The hot-path check: one relaxed atomic load. `true` means "this level
/// *may* be enabled for some target" — [`log_record`] re-checks the
/// per-target filter before emitting.
#[inline(always)]
pub fn enabled_fast(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Whether a record at `level` from `target` would actually be emitted.
pub fn enabled(level: Level, target: &str) -> bool {
    enabled_fast(level)
        && state()
            .read()
            .expect("logger lock")
            .config
            .filter_for(target)
            .allows(level)
}

/// Minimal JSON string escaping (logger and metrics export share it).
pub(crate) fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// `(year, month, day, hour, minute, second, millis)` in UTC from a unix
/// timestamp, via the days-from-civil inverse (Hinnant's algorithm).
fn civil_from_unix(secs: i64, millis: u32) -> (i64, u32, u32, u32, u32, u32, u32) {
    let days = secs.div_euclid(86_400);
    let sod = secs.rem_euclid(86_400);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    let y = if m <= 2 { y + 1 } else { y };
    (
        y,
        m,
        d,
        (sod / 3600) as u32,
        (sod / 60 % 60) as u32,
        (sod % 60) as u32,
        millis,
    )
}

fn timestamp() -> String {
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    let (y, mo, d, h, mi, s, ms) = civil_from_unix(now.as_secs() as i64, now.subsec_millis());
    format!("{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}.{ms:03}Z")
}

/// Emit one record. Called by the macros after [`enabled_fast`] passed;
/// performs the per-target check, formats, and writes under the sink lock.
pub fn log_record(level: Level, target: &str, args: fmt::Arguments<'_>) {
    let guard = state().read().expect("logger lock");
    if !guard.config.filter_for(target).allows(level) {
        return;
    }
    let vnow = virtual_now();
    let line = match guard.config.format {
        LogFormat::Text => match vnow {
            Some(vt) => format!(
                "{} {:5} {} vt={vt:.6}s: {}\n",
                timestamp(),
                level.name(),
                target,
                args
            ),
            None => format!("{} {:5} {}: {}\n", timestamp(), level.name(), target, args),
        },
        LogFormat::Json => {
            let mut msg = String::new();
            escape_json(&args.to_string(), &mut msg);
            let mut tgt = String::new();
            escape_json(target, &mut tgt);
            let vt = vnow.map_or(String::new(), |v| format!("\"vt\":{v},"));
            format!(
                "{{\"ts\":\"{}\",{vt}\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"}}\n",
                timestamp(),
                level.name(),
                tgt,
                msg
            )
        }
    };
    match &guard.sink {
        Sink::Stderr => {
            let _ = std::io::stderr().write_all(line.as_bytes());
        }
        Sink::Buffer(buf) => {
            buf.lock()
                .expect("sink lock")
                .extend_from_slice(line.as_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_default_and_directives() {
        let c = LogConfig::parse("info,queuesim=trace,deepforest=warn");
        assert_eq!(c.default, LevelFilter::Info);
        assert_eq!(c.filter_for("stca_queuesim::simulator"), LevelFilter::Trace);
        assert_eq!(c.filter_for("stca_deepforest::cascade"), LevelFilter::Warn);
        assert_eq!(c.filter_for("stca_profiler::sampler"), LevelFilter::Info);
        assert_eq!(c.max_filter(), LevelFilter::Trace);
    }

    #[test]
    fn longest_directive_wins() {
        let c = LogConfig::parse("warn,queuesim=info,queuesim::simulator=trace");
        assert_eq!(c.filter_for("stca_queuesim::simulator"), LevelFilter::Trace);
        assert_eq!(c.filter_for("stca_queuesim::metrics"), LevelFilter::Info);
    }

    #[test]
    fn prefix_must_align_with_path_segments() {
        let c = LogConfig::parse("off,queue=debug");
        // "queue" is not a path-segment prefix of "queuesim"
        assert_eq!(c.filter_for("stca_queuesim::simulator"), LevelFilter::Off);
    }

    #[test]
    fn malformed_specs_never_panic() {
        for spec in [
            "",
            ",",
            "=",
            "=trace",
            "queuesim=",
            "queuesim=banana",
            "banana",
            "a=b=c",
            ",,,=,=,",
            "info,,",
            "\u{0}weird=trace",
            "info=info=info",
        ] {
            let c = LogConfig::parse(spec);
            let _ = c.filter_for("stca_queuesim::simulator");
            let _ = c.max_filter();
        }
        // unknown bare word becomes an enable-all directive, not a panic
        let c = LogConfig::parse("banana");
        assert_eq!(c.filter_for("banana::x"), LevelFilter::Trace);
    }

    #[test]
    fn try_parse_accepts_per_target_filters() {
        let c = LogConfig::try_parse("info,serve=debug").expect("valid spec");
        assert_eq!(c.default, LevelFilter::Info);
        assert_eq!(c.filter_for("stca_serve::server"), LevelFilter::Debug);
        assert_eq!(c.filter_for("stca_queuesim::simulator"), LevelFilter::Info);
        // agrees with the lenient parser on valid input
        let lenient = LogConfig::parse("info,serve=debug");
        assert_eq!(c.default, lenient.default);
        assert_eq!(c.directives, lenient.directives);
    }

    #[test]
    fn try_parse_rejects_malformed_directives_with_context() {
        for (spec, bad) in [
            ("=trace", "=trace"),
            ("info,queuesim=", "queuesim="),
            ("queuesim=banana", "queuesim=banana"),
            ("a=b=c", "a=b=c"),
            ("info,serve=debug,=warn", "=warn"),
        ] {
            let err = LogConfig::try_parse(spec).expect_err(spec);
            assert_eq!(err.directive, bad, "spec {spec:?}");
            assert!(err.to_string().contains("STCA_LOG"), "{err}");
        }
        // empties between commas and valid specs still pass
        assert!(LogConfig::try_parse("").is_ok());
        assert!(LogConfig::try_parse("info,,trace").is_ok());
        assert!(LogConfig::try_parse("banana").is_ok(), "bare target ok");
    }

    #[test]
    fn virtual_clock_appears_in_log_lines() {
        // default Off + a directive for a target only this test uses, so
        // concurrent tests' log calls cannot land in our capture buffer
        let cfg = |format| LogConfig {
            default: LevelFilter::Off,
            directives: vec![("vttest".to_string(), LevelFilter::Info)],
            format,
        };
        let buf = std::sync::Arc::new(Mutex::new(Vec::new()));
        init_with(cfg(LogFormat::Text));
        set_sink(Some(buf.clone()));
        set_virtual_now(12.345678);
        log_record(Level::Info, "vttest::server", format_args!("hello"));
        clear_virtual_now();
        log_record(Level::Info, "vttest::server", format_args!("later"));
        // JSON format carries vt as a number
        init_with(cfg(LogFormat::Json));
        set_virtual_now(2.5);
        log_record(Level::Info, "vttest::server", format_args!("json"));
        clear_virtual_now();
        set_sink(None);
        init_with(LogConfig::default());
        let text = String::from_utf8(buf.lock().expect("buf").clone()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert!(lines[0].contains("vt=12.345678s: hello"), "{}", lines[0]);
        assert!(!lines[1].contains("vt="), "{}", lines[1]);
        assert!(lines[2].contains("\"vt\":2.5,"), "{}", lines[2]);
    }

    #[test]
    fn civil_date_is_correct() {
        // 2022-08-29 13:00:00 UTC (ICPP '22 week)
        let (y, mo, d, h, mi, s, _) = civil_from_unix(1_661_778_000, 0);
        assert_eq!((y, mo, d, h, mi, s), (2022, 8, 29, 13, 0, 0));
        let (y, mo, d, ..) = civil_from_unix(0, 0);
        assert_eq!((y, mo, d), (1970, 1, 1));
    }

    #[test]
    fn off_by_default_and_fast_path_agrees() {
        let c = LogConfig::default();
        assert_eq!(c.max_filter(), LevelFilter::Off);
        assert!(!c.filter_for("anything").allows(Level::Error));
    }

    #[test]
    fn json_escaping() {
        let mut out = String::new();
        escape_json("a\"b\\c\nd\te\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001");
    }
}
