//! End-of-run reporting: `--metrics-out` JSON export and a human summary
//! table, shared by the `stca` CLI and every figure binary.

use crate::metrics::{Metric, Registry};
use std::path::{Path, PathBuf};

/// Scan an argv-style list for `--metrics-out <path>` (or
/// `--metrics-out=<path>`). Binaries call this so every figure
/// reproduction can emit a machine-readable performance report.
pub fn metrics_out_from_args<S: AsRef<str>>(args: &[S]) -> Option<PathBuf> {
    let mut iter = args.iter().map(|s| s.as_ref());
    while let Some(arg) = iter.next() {
        if arg == "--metrics-out" {
            return iter.next().map(PathBuf::from);
        }
        if let Some(path) = arg.strip_prefix("--metrics-out=") {
            return Some(PathBuf::from(path));
        }
    }
    None
}

/// Write the registry's JSON report to `path`.
pub fn write_metrics(registry: &Registry, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, registry.to_json())
}

/// End-of-run hook for binaries: honors `--metrics-out <path>` from the
/// process arguments (writing the global registry as JSON) and prints the
/// summary table to stderr when a path was given or info logging reaches
/// this module (stdout stays reserved for result tables).
pub fn emit_run_report() {
    let args: Vec<String> = std::env::args().collect();
    let out = metrics_out_from_args(&args);
    let registry = crate::metrics::registry();
    if let Some(path) = &out {
        match write_metrics(registry, path) {
            Ok(()) => crate::info!("wrote metrics report to {}", path.display()),
            Err(e) => {
                // the user explicitly asked for this file; the failure must
                // be visible even with logging off
                eprintln!(
                    "error: failed to write metrics report to {}: {e}",
                    path.display()
                );
            }
        }
    }
    if out.is_some() || crate::logger::enabled(crate::Level::Info, module_path!()) {
        let table = summary_table(registry);
        if !table.is_empty() {
            eprintln!("\n== metrics summary ==\n{table}");
        }
    }
}

/// Render a plain-text summary table of every registered metric —
/// counters and gauges with their value, histograms with count / mean /
/// p50 / p95 / p99. Empty registry renders an empty string.
pub fn summary_table(registry: &Registry) -> String {
    let snapshot = registry.snapshot();
    if snapshot.is_empty() {
        return String::new();
    }
    let mut rows: Vec<[String; 6]> = Vec::new();
    for (name, metric) in snapshot {
        match metric {
            Metric::Counter(c) => {
                rows.push([
                    name,
                    c.get().to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
            Metric::Gauge(g) => {
                rows.push([
                    name,
                    fmt_value(g.get()),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
            Metric::Histogram(h) => {
                let s = h.summary();
                rows.push([
                    name,
                    s.count.to_string(),
                    fmt_value(s.mean),
                    fmt_value(s.p50),
                    fmt_value(s.p95),
                    fmt_value(s.p99),
                ]);
            }
        }
    }
    let header = ["metric", "count/value", "mean", "p50", "p95", "p99"];
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let mut push_row = |cells: &[&str]| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i == 0 {
                out.push_str(&format!("{cell:<w$}"));
            } else {
                out.push_str(&format!("  {cell:>w$}"));
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    push_row(&header);
    for row in &rows {
        let cells: Vec<&str> = row.iter().map(|s| s.as_str()).collect();
        push_row(&cells);
    }
    out
}

/// Compact numeric rendering for the summary table: integers plain,
/// small values in engineering style.
fn fmt_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v == v.trunc() && v.abs() < 1e9 {
        format!("{}", v as i64)
    } else if v.abs() >= 0.001 {
        format!("{v:.3}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;

    #[test]
    fn parses_metrics_out_flag() {
        let args = ["--scale", "quick", "--metrics-out", "m.json"];
        assert_eq!(metrics_out_from_args(&args), Some(PathBuf::from("m.json")));
        let args = ["--metrics-out=x/y.json"];
        assert_eq!(
            metrics_out_from_args(&args),
            Some(PathBuf::from("x/y.json"))
        );
        let args = ["--scale", "quick"];
        assert_eq!(metrics_out_from_args(&args), None);
        let args = ["--metrics-out"]; // dangling flag: ignored, no panic
        assert_eq!(metrics_out_from_args(&args), None);
    }

    #[test]
    fn summary_table_lists_all_kinds() {
        let r = Registry::new();
        r.counter("sim.events_total").add(42);
        r.gauge("sim.utilization").set(0.5);
        r.histogram("sim.run_seconds").record(0.125);
        let table = summary_table(&r);
        assert!(table.starts_with("metric"));
        assert!(table.contains("sim.events_total"));
        assert!(table.contains("42"));
        assert!(table.contains("sim.utilization"));
        assert!(table.contains("sim.run_seconds"));
        assert_eq!(summary_table(&Registry::new()), "");
    }

    #[test]
    fn written_report_is_valid_json() {
        let r = Registry::new();
        r.counter("a.b_total").add(3);
        r.histogram("a.c_seconds").record(1.5);
        let dir = std::env::temp_dir().join("stca_obs_report_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("metrics.json");
        write_metrics(&r, &path).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        let v = Value::parse(&text).expect("valid JSON");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("a.b_total"))
                .and_then(Value::as_f64),
            Some(3.0)
        );
        assert_eq!(
            v.get("histograms")
                .and_then(|h| h.get("a.c_seconds"))
                .and_then(|h| h.get("count"))
                .and_then(Value::as_f64),
            Some(1.0)
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
