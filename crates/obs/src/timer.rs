//! RAII stage timers: wall time per pipeline stage, recorded into the
//! global metrics registry on drop.

use crate::metrics::{registry, Histogram};
use std::sync::Arc;
use std::time::Instant;

/// Times a stage from construction to drop into a named histogram
/// (values in seconds; name metrics `*_seconds`).
///
/// ```
/// {
///     let _t = stca_obs::StageTimer::new("deepforest.cascade.fit_seconds");
///     // ... work ...
/// } // elapsed recorded here
/// assert_eq!(stca_obs::histogram("deepforest.cascade.fit_seconds").count(), 1);
/// ```
#[derive(Debug)]
pub struct StageTimer {
    histogram: Arc<Histogram>,
    start: Instant,
    stopped: bool,
}

impl StageTimer {
    /// Start timing into the global histogram `name`.
    pub fn new(name: &str) -> StageTimer {
        StageTimer {
            histogram: registry().histogram(name),
            start: Instant::now(),
            stopped: false,
        }
    }

    /// Start timing into an explicit histogram (pre-resolved handle for
    /// hot paths, or a non-global registry in tests).
    pub fn with_histogram(histogram: Arc<Histogram>) -> StageTimer {
        StageTimer {
            histogram,
            start: Instant::now(),
            stopped: false,
        }
    }

    /// Stop early and return the elapsed seconds that were recorded.
    pub fn stop(mut self) -> f64 {
        let elapsed = self.start.elapsed().as_secs_f64();
        self.histogram.record(elapsed);
        self.stopped = true;
        elapsed
    }

    /// Elapsed seconds so far, without recording.
    pub fn elapsed(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        if !self.stopped {
            self.histogram.record(self.start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn records_once_on_drop() {
        let r = Registry::new();
        let h = r.histogram("t.stage_seconds");
        {
            let _t = StageTimer::with_histogram(h.clone());
        }
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 0.0);
    }

    #[test]
    fn stop_records_and_suppresses_drop() {
        let r = Registry::new();
        let h = r.histogram("t.stop_seconds");
        let t = StageTimer::with_histogram(h.clone());
        let elapsed = t.stop();
        assert_eq!(h.count(), 1, "stop() must not double-record with drop");
        assert!(elapsed >= 0.0);
        assert!((h.sum() - elapsed).abs() < 1e-12);
    }

    #[test]
    fn time_scope_macro_records_into_global_registry() {
        {
            crate::time_scope!("obs.test.scope_seconds");
            std::hint::black_box(0);
        }
        assert_eq!(crate::histogram("obs.test.scope_seconds").count(), 1);
    }
}
