//! Global metrics registry: counters, gauges, log-bucketed histograms.
//!
//! Metric names follow `subsystem.name` with a unit suffix
//! (`_total` for counters, `_seconds` / `_bytes` etc. for measured
//! quantities): `queuesim.events_total`,
//! `deepforest.cascade.level_fit_seconds`. Handles are `Arc`s; call sites
//! in hot paths should look a handle up once (or accumulate locally and
//! flush once per run) rather than hitting the registry per event.
//!
//! Histograms are log-bucketed: bucket `i` covers
//! `[MIN * G^i, MIN * G^(i+1))` with `G = 2^(1/4)`, spanning 1 ns to ~30 y
//! when values are seconds. Quantiles are estimated by linear rank
//! interpolation *within* the bucket containing the target rank, clamped
//! to the observed min/max.
//!
//! **Bounded-relative-error guarantee.** The true quantile and its
//! estimate always land in the same bucket `[lo, lo·G)`, and any two
//! points of that interval differ by at most a factor `G`, so the
//! relative error is bounded by `G − 1 = 2^(1/4) − 1 ≈ 18.9%` for every
//! quantile of every sample set (the property test
//! `quantile_relative_error_is_bounded` asserts it). Interpolation does
//! not tighten the worst case — it removes the systematic bias the old
//! geometric-midpoint rule had at bucket boundaries, where a rank
//! sitting at the very edge of a bucket was pulled half a bucket away.
//!
//! Histograms also carry **exemplars**: each bucket remembers the trace
//! id of one request that landed in it (last write wins), linked via the
//! thread-local set by [`set_current_trace_id`]. Exemplars are a
//! best-effort debugging hint — when samples race from several threads
//! the surviving id is schedule-dependent, so they are deliberately
//! excluded from the determinism contract and from byte-stable exports.

use crate::json::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Sub-buckets per octave (power of two) in histograms.
const SUB_BUCKETS_PER_OCTAVE: usize = 4;
/// Octaves covered: MIN .. MIN * 2^OCTAVES.
const OCTAVES: usize = 60;
/// Regular buckets (plus one underflow and one overflow bucket).
const BUCKETS: usize = OCTAVES * SUB_BUCKETS_PER_OCTAVE;
/// Lower bound of the first regular bucket.
const MIN_VALUE: f64 = 1e-9;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding the latest observed `f64`.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

std::thread_local! {
    /// Trace id of the request the current thread is working on
    /// (0 = none). Histogram samples recorded while it is set stamp the
    /// id into their bucket's exemplar slot.
    static CURRENT_TRACE_ID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Set the calling thread's current trace id (0 clears it). The serving
/// loop sets this per request so nested timers — e.g. the
/// `deepforest.predict.*` histograms inside a model call — pick up the
/// id transparently.
pub fn set_current_trace_id(id: u64) {
    CURRENT_TRACE_ID.with(|c| c.set(id));
}

/// The calling thread's current trace id (0 = none).
pub fn current_trace_id() -> u64 {
    CURRENT_TRACE_ID.with(|c| c.get())
}

/// A lock-free log-bucketed histogram of non-negative `f64` samples.
pub struct Histogram {
    /// `[underflow, BUCKETS regular, overflow]`.
    buckets: Vec<AtomicU64>,
    /// One exemplar trace id per bucket slot (0 = none, last write wins).
    exemplars: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of samples as `f64` bits, updated by CAS.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

/// Index of the regular bucket containing `v` (assumes `v >= MIN_VALUE`).
fn bucket_index(v: f64) -> usize {
    let exp = (v / MIN_VALUE).log2() * SUB_BUCKETS_PER_OCTAVE as f64;
    (exp.floor() as usize).min(BUCKETS - 1)
}

/// Lower bound of regular bucket `i`.
fn bucket_lower(i: usize) -> f64 {
    MIN_VALUE * 2f64.powf(i as f64 / SUB_BUCKETS_PER_OCTAVE as f64)
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..BUCKETS + 2).map(|_| AtomicU64::new(0)).collect(),
            exemplars: (0..BUCKETS + 2).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

impl Histogram {
    /// Record one sample. Negative and NaN samples are counted in the
    /// underflow bucket and excluded from sum/min/max. If the calling
    /// thread has a current trace id set, it becomes the bucket's
    /// exemplar (last write wins).
    pub fn record(&self, v: f64) {
        let slot = if !v.is_finite() || v < MIN_VALUE {
            0
        } else if v >= bucket_lower(BUCKETS) {
            BUCKETS + 1
        } else {
            1 + bucket_index(v)
        };
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let trace_id = current_trace_id();
        if trace_id != 0 {
            self.exemplars[slot].store(trace_id, Ordering::Relaxed);
        }
        if v.is_finite() && v >= 0.0 {
            fetch_update_f64(&self.sum_bits, |s| s + v);
            fetch_update_f64(&self.min_bits, |m| m.min(v));
            fetch_update_f64(&self.max_bits, |m| m.max(v));
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of (non-negative, finite) samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> f64 {
        let m = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        let m = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }

    /// Mean of samples, or 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// The bucket slot holding the `q`-quantile rank, with the sample's
    /// rank inside the bucket and the bucket's occupancy at read time.
    fn quantile_slot(&self, q: f64) -> Option<(usize, u64, u64)> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (slot, bucket) in self.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            if in_bucket > 0 && seen + in_bucket >= target {
                return Some((slot, target - seen, in_bucket));
            }
            seen += in_bucket;
        }
        None
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`). Returns 0 when empty.
    ///
    /// Within the bucket `[lo, hi)` that holds the target rank, the
    /// estimate interpolates linearly by rank (`rank − ½` of the
    /// bucket's occupancy), so it never collapses to a bucket edge or
    /// midpoint; the relative error stays bounded by the bucket ratio
    /// `G − 1 ≈ 18.9%` (see the module docs).
    pub fn quantile(&self, q: f64) -> f64 {
        let Some((slot, rank, in_bucket)) = self.quantile_slot(q) else {
            return if self.count() == 0 { 0.0 } else { self.max() };
        };
        let estimate = if slot == 0 {
            self.min()
        } else if slot == BUCKETS + 1 {
            self.max()
        } else {
            let lo = bucket_lower(slot - 1);
            let hi = bucket_lower(slot);
            let frac = (rank as f64 - 0.5) / in_bucket as f64;
            lo + (hi - lo) * frac
        };
        estimate.clamp(self.min(), self.max())
    }

    /// The exemplar trace id recorded nearest the `q`-quantile bucket:
    /// the bucket itself first, then the closest occupied slot below,
    /// then above. `None` when no sample carried a trace id. Best-effort
    /// by design — see the module docs.
    pub fn exemplar_for_quantile(&self, q: f64) -> Option<u64> {
        let (slot, ..) = self.quantile_slot(q)?;
        let read = |s: usize| {
            let id = self.exemplars[s].load(Ordering::Relaxed);
            (id != 0).then_some(id)
        };
        if let Some(id) = read(slot) {
            return Some(id);
        }
        for d in 1..self.exemplars.len() {
            if slot >= d {
                if let Some(id) = read(slot - d) {
                    return Some(id);
                }
            }
            if slot + d < self.exemplars.len() {
                if let Some(id) = read(slot + d) {
                    return Some(id);
                }
            }
        }
        None
    }

    /// `(count, sum, min, max, p50, p95, p99)` in one read.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time histogram statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Mean sample.
    pub mean: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

fn fetch_update_f64(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut current = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(current)).to_bits();
        match bits.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// A named metric of any kind.
#[derive(Debug, Clone)]
pub enum Metric {
    /// Monotonic counter.
    Counter(Arc<Counter>),
    /// Latest-value gauge.
    Gauge(Arc<Gauge>),
    /// Distribution.
    Histogram(Arc<Histogram>),
}

/// The metric store. One global instance lives behind [`registry`];
/// separate instances are for tests.
///
/// Registering a name twice with different kinds is a bug in the caller,
/// but not one worth aborting a multi-hour profiling run over: the first
/// registration keeps the name, the mismatched caller gets a *detached*
/// handle of the kind it asked for (updates to it are simply invisible in
/// reports), and a warning is logged once per name.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
    /// Names already warned about for kind conflicts (one-shot warnings).
    kind_conflicts: Mutex<BTreeSet<String>>,
}

impl Registry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    // Must be called with no registry lock held: it takes its own lock and
    // logging may itself touch metrics.
    fn warn_kind_conflict(&self, name: &str, requested: &str, existing: &str) {
        let first_time = self
            .kind_conflicts
            .lock()
            .expect("conflict lock")
            .insert(name.to_string());
        if first_time {
            crate::warn!(
                "metric {name:?} is already registered as a {existing}; returning a \
                 detached {requested} whose updates will not appear in reports"
            );
        }
    }

    /// Get or create the named counter. If the name is already registered
    /// as a different kind, warns once and returns a detached counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let existing = {
            let mut map = self.metrics.write().expect("registry lock");
            match map
                .entry(name.to_string())
                .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
            {
                Metric::Counter(c) => return c.clone(),
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            }
        };
        self.warn_kind_conflict(name, "counter", existing);
        Arc::new(Counter::default())
    }

    /// Get or create the named gauge. If the name is already registered as
    /// a different kind, warns once and returns a detached gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let existing = {
            let mut map = self.metrics.write().expect("registry lock");
            match map
                .entry(name.to_string())
                .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
            {
                Metric::Gauge(g) => return g.clone(),
                Metric::Counter(_) => "counter",
                Metric::Histogram(_) => "histogram",
            }
        };
        self.warn_kind_conflict(name, "gauge", existing);
        Arc::new(Gauge::default())
    }

    /// Get or create the named histogram. If the name is already registered
    /// as a different kind, warns once and returns a detached histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let existing = {
            let mut map = self.metrics.write().expect("registry lock");
            match map
                .entry(name.to_string())
                .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
            {
                Metric::Histogram(h) => return h.clone(),
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
            }
        };
        self.warn_kind_conflict(name, "histogram", existing);
        Arc::new(Histogram::default())
    }

    /// Sorted snapshot of all metrics.
    pub fn snapshot(&self) -> Vec<(String, Metric)> {
        self.metrics
            .read()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Sorted snapshot of the metrics whose names start with `prefix`
    /// (e.g. `"serve."` for a health snapshot of the serving loop alone).
    ///
    /// Ordering contract: results are **byte-lexicographic** on the full
    /// name, matching [`Registry::snapshot`] and the JSON/Prometheus
    /// exports, so repeated snapshots are byte-stable. Nested prefixes
    /// (`serve.shard3.breaker.*`) sort inside their parent, and numbered
    /// groups sort by bytes, not numerically: `serve.shard10.*` comes
    /// before `serve.shard2.*`. Matching names form one contiguous range
    /// in that order (`'.'` sorts below every identifier character), which
    /// is what makes the early-terminating range scan below exact — a
    /// prefix like `"serve.shard1."` selects shard 1 only, never
    /// `serve.shard10.*`.
    pub fn snapshot_prefixed(&self, prefix: &str) -> Vec<(String, Metric)> {
        self.metrics
            .read()
            .expect("registry lock")
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Remove every metric (test isolation between runs).
    pub fn clear(&self) {
        self.metrics.write().expect("registry lock").clear();
    }

    /// The whole registry as a JSON [`Value`] tree:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {name: {count, sum,
    /// min, max, mean, p50, p95, p99}}}`.
    pub fn to_json_value(&self) -> Value {
        let mut counters = BTreeMap::new();
        let mut gauges = BTreeMap::new();
        let mut histograms = BTreeMap::new();
        for (name, metric) in self.snapshot() {
            match metric {
                Metric::Counter(c) => {
                    counters.insert(name, Value::Number(c.get() as f64));
                }
                Metric::Gauge(g) => {
                    gauges.insert(name, Value::Number(g.get()));
                }
                Metric::Histogram(h) => {
                    let s = h.summary();
                    let mut obj = BTreeMap::new();
                    obj.insert("count".to_string(), Value::Number(s.count as f64));
                    obj.insert("sum".to_string(), Value::Number(s.sum));
                    obj.insert("min".to_string(), Value::Number(s.min));
                    obj.insert("max".to_string(), Value::Number(s.max));
                    obj.insert("mean".to_string(), Value::Number(s.mean));
                    obj.insert("p50".to_string(), Value::Number(s.p50));
                    obj.insert("p95".to_string(), Value::Number(s.p95));
                    obj.insert("p99".to_string(), Value::Number(s.p99));
                    histograms.insert(name, Value::Object(obj));
                }
            }
        }
        let mut root = BTreeMap::new();
        root.insert("counters".to_string(), Value::Object(counters));
        root.insert("gauges".to_string(), Value::Object(gauges));
        root.insert("histograms".to_string(), Value::Object(histograms));
        Value::Object(root)
    }

    /// JSON metrics report as a string.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// Prometheus text exposition format. Dots in names become
    /// underscores and every metric gains the `stca_` namespace prefix.
    pub fn to_prometheus(&self) -> String {
        let sanitize = |name: &str| format!("stca_{}", name.replace(['.', '-'], "_"));
        let mut out = String::new();
        for (name, metric) in self.snapshot() {
            let pname = sanitize(&name);
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {pname} counter\n{pname} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("# TYPE {pname} gauge\n{pname} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    let s = h.summary();
                    out.push_str(&format!("# TYPE {pname} summary\n"));
                    for (q, v) in [(0.5, s.p50), (0.95, s.p95), (0.99, s.p99)] {
                        out.push_str(&format!("{pname}{{quantile=\"{q}\"}} {v}\n"));
                    }
                    out.push_str(&format!(
                        "{pname}_sum {}\n{pname}_count {}\n",
                        s.sum, s.count
                    ));
                }
            }
        }
        out
    }
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Global counter handle (registry lookup; cache the `Arc` in hot paths).
pub fn counter(name: &str) -> Arc<Counter> {
    registry().counter(name)
}

/// Global gauge handle.
pub fn gauge(name: &str) -> Arc<Gauge> {
    registry().gauge(name)
}

/// Global histogram handle.
pub fn histogram(name: &str) -> Arc<Histogram> {
    registry().histogram(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers() {
        assert!((bucket_lower(0) - 1e-9).abs() < 1e-24);
        // one octave up after SUB_BUCKETS_PER_OCTAVE buckets
        assert!((bucket_lower(SUB_BUCKETS_PER_OCTAVE) - 2e-9).abs() / 2e-9 < 1e-12);
        // indices round down within the bucket
        let lo = bucket_lower(17);
        let hi = bucket_lower(18);
        assert_eq!(bucket_index(lo * 1.0000001), 17);
        assert_eq!(bucket_index(hi * 0.9999999), 17);
    }

    #[test]
    fn quantiles_within_bucket_error() {
        let h = Histogram::default();
        // 1..=1000 ms
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3);
        }
        let max_rel = 2f64.powf(1.0 / SUB_BUCKETS_PER_OCTAVE as f64) - 1.0; // ~19%
        for (q, exact) in [(0.5, 0.5), (0.95, 0.95), (0.99, 0.99)] {
            let est = h.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= max_rel,
                "q{q}: est {est} vs exact {exact} (rel {rel})"
            );
        }
        assert_eq!(h.count(), 1000);
        assert!((h.sum() - 500.5).abs() < 1e-9);
        assert!((h.min() - 1e-3).abs() < 1e-15);
        assert!((h.max() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        h.record(0.25);
        // single sample: every quantile is that sample (clamped to min/max)
        assert_eq!(h.quantile(0.0), 0.25);
        assert_eq!(h.quantile(1.0), 0.25);
        h.record(f64::NAN); // counted, not summed
        assert_eq!(h.count(), 2);
        assert!((h.sum() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn underflow_and_overflow() {
        let h = Histogram::default();
        h.record(0.0);
        h.record(-5.0);
        h.record(1e30);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 1e30);
        assert!(h.quantile(0.99) <= 1e30);
    }

    #[test]
    fn registry_kind_conflict_returns_detached_handle() {
        let r = Registry::new();
        r.counter("x_total").add(3);
        // Mismatched kind must not abort: the caller gets a usable gauge…
        let g = r.gauge("x_total");
        g.set(7.5);
        assert_eq!(g.get(), 7.5);
        // …while the original registration keeps the name.
        let snap = r.snapshot();
        let (_, metric) = snap.iter().find(|(n, _)| n == "x_total").expect("present");
        match metric {
            Metric::Counter(c) => assert_eq!(c.get(), 3),
            other => panic!("original counter replaced by {other:?}"),
        }
        // Repeat offenders get fresh detached handles, not a panic.
        r.histogram("x_total").record(0.1);
        assert_eq!(r.snapshot().len(), 1);
    }

    #[test]
    fn prefixed_snapshot_filters_names() {
        let r = Registry::new();
        r.counter("serve.admitted_total").add(2);
        r.counter("serve.shed_total").add(1);
        r.counter("exec.tasks_total").add(9);
        r.gauge("serve.queue_depth").set(4.0);
        let names: Vec<String> = r
            .snapshot_prefixed("serve.")
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(
            names,
            vec![
                "serve.admitted_total",
                "serve.queue_depth",
                "serve.shed_total"
            ]
        );
        assert!(r.snapshot_prefixed("nope.").is_empty());
    }

    /// Regression: nested fleet prefixes (`serve.shardN.breaker.*`) must
    /// come back byte-stably sorted under the key-sorted export contract,
    /// and a per-shard prefix must select exactly that shard.
    #[test]
    fn prefixed_snapshot_is_byte_stable_for_nested_shard_prefixes() {
        let r = Registry::new();
        // registration order deliberately scrambled
        for name in [
            "serve.shard2.admitted_total",
            "serve.shard10.breaker.opens_total",
            "serve.shard1.breaker.rejects_total",
            "serve.shard1.admitted_total",
            "serve.shard10.admitted_total",
            "serve.shard1.breaker.opens_total",
            "serve.fleet.rerouted_total",
            "serve.shard3.breaker.closes_total",
        ] {
            r.counter(name).add(1);
        }
        let names: Vec<String> = r
            .snapshot_prefixed("serve.")
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        // byte order: "fleet" < "shard1" < "shard10" < "shard2" < "shard3",
        // and within a shard, "admitted" < "breaker.*"
        assert_eq!(
            names,
            vec![
                "serve.fleet.rerouted_total",
                "serve.shard1.admitted_total",
                "serve.shard1.breaker.opens_total",
                "serve.shard1.breaker.rejects_total",
                "serve.shard10.admitted_total",
                "serve.shard10.breaker.opens_total",
                "serve.shard2.admitted_total",
                "serve.shard3.breaker.closes_total",
            ]
        );
        // repeated snapshots are byte-identical
        let again: Vec<String> = r
            .snapshot_prefixed("serve.")
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, again);
        // a shard-scoped prefix selects exactly that shard: shard1, not
        // shard10
        let shard1: Vec<String> = r
            .snapshot_prefixed("serve.shard1.")
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(
            shard1,
            vec![
                "serve.shard1.admitted_total",
                "serve.shard1.breaker.opens_total",
                "serve.shard1.breaker.rejects_total",
            ]
        );
        // nested prefix digs one level deeper
        let breaker: Vec<String> = r
            .snapshot_prefixed("serve.shard1.breaker.")
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(
            breaker,
            vec![
                "serve.shard1.breaker.opens_total",
                "serve.shard1.breaker.rejects_total",
            ]
        );
    }

    /// Property: for any sample set and any quantile, the estimate's
    /// relative error against the exact sample quantile is bounded by
    /// the bucket ratio `G − 1`.
    #[test]
    fn quantile_relative_error_is_bounded() {
        let max_rel = 2f64.powf(1.0 / SUB_BUCKETS_PER_OCTAVE as f64) - 1.0 + 1e-9;
        // a deterministic mix of shapes: uniform grid, geometric,
        // heavy-tailed, constant, tiny-n, and boundary-hugging samples
        let gridded: Vec<f64> = (1..=500).map(|i| i as f64 * 1e-3).collect();
        let geometric: Vec<f64> = (0..300).map(|i| 1e-6 * 1.07f64.powi(i)).collect();
        let heavy: Vec<f64> = (1..=400).map(|i| 1e-4 / (i as f64 / 400.0)).collect();
        let constant = vec![0.125; 64];
        let tiny = vec![3.0e-3, 5.0e-3, 8.0e-3];
        // values sitting exactly on bucket lower bounds — the boundary
        // case the old geometric-midpoint rule was biased on
        let boundary: Vec<f64> = (40..80).map(bucket_lower).collect();
        for samples in [gridded, geometric, heavy, constant, tiny, boundary] {
            let h = Histogram::default();
            let mut sorted = samples.clone();
            sorted.sort_by(f64::total_cmp);
            for &v in &samples {
                h.record(v);
            }
            for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0] {
                let est = h.quantile(q);
                let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
                let exact = sorted[rank];
                let rel = (est - exact).abs() / exact;
                assert!(
                    rel <= max_rel,
                    "n={} q={q}: est {est} vs exact {exact} (rel {rel})",
                    sorted.len()
                );
            }
        }
    }

    #[test]
    fn exemplars_resolve_quantile_buckets() {
        let h = Histogram::default();
        // no trace id set: samples leave no exemplar
        h.record(0.010);
        assert_eq!(h.exemplar_for_quantile(0.5), None);
        // stamped samples: fast requests tagged 0x11, slow tagged 0x22
        set_current_trace_id(0x11);
        for _ in 0..99 {
            h.record(0.010);
        }
        set_current_trace_id(0x22);
        h.record(10.0);
        set_current_trace_id(0);
        assert_eq!(h.exemplar_for_quantile(0.50), Some(0x11));
        assert_eq!(h.exemplar_for_quantile(0.999), Some(0x22));
        // clearing the thread-local stops stamping
        h.record(20.0);
        assert_eq!(h.exemplar_for_quantile(1.0), Some(0x22), "nearest slot");
    }

    #[test]
    fn exports_are_byte_stable_and_key_sorted() {
        let r = Registry::new();
        // insert in non-sorted order
        r.counter("serve.z_total").add(1);
        r.gauge("serve.a_depth").set(2.0);
        r.histogram("serve.m_seconds").record(0.25);
        r.counter("exec.tasks_total").add(4);
        let names: Vec<String> = r
            .snapshot_prefixed("serve.")
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "prefixed snapshot must be key-sorted");
        assert_eq!(r.to_json(), r.to_json(), "JSON export is byte-stable");
        assert_eq!(
            r.to_prometheus(),
            r.to_prometheus(),
            "Prometheus export is byte-stable"
        );
    }

    #[test]
    fn prometheus_format_shape() {
        let r = Registry::new();
        r.counter("queuesim.events_total").add(5);
        r.gauge("queuesim.server_utilization").set(0.75);
        r.histogram("queuesim.run_seconds").record(0.5);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE stca_queuesim_events_total counter"));
        assert!(text.contains("stca_queuesim_events_total 5"));
        assert!(text.contains("stca_queuesim_server_utilization 0.75"));
        assert!(text.contains("stca_queuesim_run_seconds{quantile=\"0.95\"}"));
        assert!(text.contains("stca_queuesim_run_seconds_count 1"));
    }
}
