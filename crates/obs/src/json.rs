//! Minimal JSON tree, serializer, and parser — just enough to emit the
//! metrics report and round-trip it in tests, with no external crates.

use crate::logger::escape_json;
use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects use [`BTreeMap`] so serialization is sorted and
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// All numbers are `f64` (metric values are counts and seconds).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Parse a JSON document.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn write_number(n: f64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if !n.is_finite() {
        // JSON has no Inf/NaN; emit null like serde_json does
        return f.write_str("null");
    }
    if n == n.trunc() && n.abs() < 1e15 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write_number(*n, f),
            Value::String(s) => {
                let mut out = String::new();
                escape_json(s, &mut out);
                write!(f, "\"{out}\"")
            }
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::new();
                    escape_json(k, &mut key);
                    write!(f, "\"{key}\":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // surrogate pairs are not needed for metric names
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // multi-byte UTF-8: decode only this character —
                    // validating the whole remaining input per character
                    // turns large-document parsing quadratic
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let c = std::str::from_utf8(&self.bytes[self.pos..end])
                        .ok()
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| self.err("bad number"))
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let text = r#"{"a":[1,2.5,-3e2,null,true,false],"b":{"c":"d\ne"},"empty":[],"eo":{}}"#;
        let v = Value::parse(text).expect("parses");
        let rendered = v.to_string();
        assert_eq!(Value::parse(&rendered).expect("re-parses"), v);
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")),
            Some(&Value::String("d\ne".into()))
        );
        assert_eq!(
            v.get("a")
                .map(|a| matches!(a, Value::Array(items) if items.len() == 6)),
            Some(true)
        );
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Value::Number(5.0).to_string(), "5");
        assert_eq!(Value::Number(0.5).to_string(), "0.5");
        assert_eq!(Value::Number(-2.0).to_string(), "-2");
        assert_eq!(Value::Number(f64::NAN).to_string(), "null");
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "nul", "{\"a\":}", "1 2", "\"\\x\"",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
