//! # stca-obs
//!
//! Zero-dependency observability for the STCA pipeline: structured leveled
//! logging, a global metrics registry, and RAII stage timers — `std` only,
//! because the build environment is offline and the paper's whole premise
//! (§3.1, §4) is that good allocation policy starts with *measuring* the
//! system.
//!
//! Three pillars:
//!
//! * **Logging** ([`logger`]) — leveled, per-target filtered via the
//!   `STCA_LOG` environment variable (`STCA_LOG=info,queuesim=trace`),
//!   emitting human-readable text or JSON lines (`STCA_LOG_FORMAT=json`).
//!   The disabled fast path is a single relaxed atomic load, so call sites
//!   in hot loops cost ~a nanosecond when their level is off.
//! * **Metrics** ([`metrics`]) — named counters, gauges, and log-bucketed
//!   histograms with quantile estimates (p50/p95/p99), exportable as JSON
//!   or Prometheus text format. Names follow `subsystem.name_unit`, e.g.
//!   `queuesim.events_total`, `deepforest.cascade.level_fit_seconds`.
//! * **Stage timing** ([`timer`]) — RAII guards recording wall time into a
//!   histogram when dropped, plus the [`time_scope!`] macro.
//!
//! ```
//! stca_obs::init_from_env();
//! stca_obs::info!("profiling {} conditions", 24);
//! stca_obs::counter("profiler.samples_total").add(24);
//! {
//!     stca_obs::time_scope!("profiler.run_seconds");
//!     // ... expensive stage ...
//! }
//! let report = stca_obs::registry().to_json();
//! assert!(report.contains("profiler.samples_total"));
//! ```

pub mod json;
pub mod logger;
pub mod metrics;
pub mod report;
pub mod timer;

pub use logger::{
    clear_virtual_now, init_from_env, init_with, set_sink, set_virtual_now, try_init_from_env,
    virtual_now, FilterError, Level, LevelFilter, LogConfig, LogFormat,
};
pub use metrics::{
    counter, current_trace_id, gauge, histogram, registry, set_current_trace_id, Counter, Gauge,
    Histogram, Registry,
};
pub use report::{emit_run_report, metrics_out_from_args, summary_table, write_metrics};
pub use timer::StageTimer;

/// Log at an explicit level. Prefer the per-level macros.
#[macro_export]
macro_rules! log {
    ($lvl:expr, $($arg:tt)+) => {{
        if $crate::logger::enabled_fast($lvl) {
            $crate::logger::log_record($lvl, module_path!(), format_args!($($arg)+));
        }
    }};
}

/// Log an error (always significant; reserved for failures).
#[macro_export]
macro_rules! error {
    ($($arg:tt)+) => { $crate::log!($crate::Level::Error, $($arg)+) };
}

/// Log a warning.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)+) => { $crate::log!($crate::Level::Warn, $($arg)+) };
}

/// Log progress information.
#[macro_export]
macro_rules! info {
    ($($arg:tt)+) => { $crate::log!($crate::Level::Info, $($arg)+) };
}

/// Log debugging detail.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)+) => { $crate::log!($crate::Level::Debug, $($arg)+) };
}

/// Log per-event detail (hot loops; compiled to one atomic load when off).
#[macro_export]
macro_rules! trace {
    ($($arg:tt)+) => { $crate::log!($crate::Level::Trace, $($arg)+) };
}

/// Time the rest of the enclosing scope into the named histogram.
#[macro_export]
macro_rules! time_scope {
    ($name:expr) => {
        let _stca_obs_stage_guard = $crate::StageTimer::new($name);
    };
}
