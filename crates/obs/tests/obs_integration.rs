//! Integration tests for the observability stack: concurrent metric
//! updates, quantile accuracy against exact references, log-filter
//! robustness, and JSON export round-tripping.

use stca_obs::json::Value;
use stca_obs::{LogConfig, Registry};

#[test]
fn counters_and_gauges_correct_under_concurrent_updates() {
    let registry = Registry::new();
    let tasks = 8u64;
    let per_task = 50_000u64;
    // run the updates through the stca-exec pool (forced to 8 workers so
    // the tasks genuinely race even on a single-core machine)
    stca_exec::set_threads(8);
    stca_exec::par_map_range(tasks as usize, |t| {
        let counter = registry.counter("conc.updates_total");
        let histogram = registry.histogram("conc.values");
        for i in 0..per_task {
            counter.inc();
            histogram.record((i % 100) as f64 + 1.0);
        }
        registry.gauge("conc.last_thread").set(t as f64);
    });
    assert_eq!(
        registry.counter("conc.updates_total").get(),
        tasks * per_task
    );
    let h = registry.histogram("conc.values");
    assert_eq!(h.count(), tasks * per_task);
    // exact sum: tasks * sum_{i=0..per_task-1} ((i % 100) + 1)
    let per_task_sum: f64 = (0..per_task).map(|i| (i % 100) as f64 + 1.0).sum();
    assert!((h.sum() - tasks as f64 * per_task_sum).abs() < 1e-6);
    assert_eq!(h.min(), 1.0);
    assert_eq!(h.max(), 100.0);
    let g = registry.gauge("conc.last_thread").get();
    assert!(
        g >= 0.0 && g < tasks as f64,
        "gauge holds one task's value, got {g}"
    );
}

#[test]
fn histogram_quantiles_against_exact_reference() {
    let registry = Registry::new();
    let h = registry.histogram("ref.values");
    // log-uniform-ish spread over 6 orders of magnitude
    let mut samples = Vec::new();
    for i in 0..10_000u64 {
        let v = 1e-6 * 1.002f64.powi(i as i32 % 5000) * (1 + i % 7) as f64;
        samples.push(v);
        h.record(v);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    // bucket growth factor 2^(1/4): worst-case relative error ~19%
    let tolerance = 0.20;
    for q in [0.5, 0.9, 0.95, 0.99] {
        let exact =
            samples[((q * samples.len() as f64).ceil() as usize - 1).min(samples.len() - 1)];
        let estimate = h.quantile(q);
        let rel = (estimate - exact).abs() / exact;
        assert!(
            rel <= tolerance,
            "q{q}: estimate {estimate} vs exact {exact} (rel {rel:.3})"
        );
    }
}

#[test]
fn log_filter_parsing_never_panics_on_fuzzed_input() {
    // deterministic xorshift so the fuzz corpus is reproducible
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let alphabet: Vec<char> =
        "abcdefghijklmnopqrstuvwxyz=,:;_-*?![]{}()0123456789 \t\n\\\"'\u{1F980}"
            .chars()
            .collect();
    for _ in 0..2000 {
        let len = (next() % 40) as usize;
        let spec: String = (0..len)
            .map(|_| alphabet[(next() % alphabet.len() as u64) as usize])
            .collect();
        let config = LogConfig::parse(&spec);
        let _ = config.max_filter();
        let _ = config.filter_for("stca_queuesim::simulator");
        let _ = config.filter_for("");
    }
}

#[test]
fn json_metrics_export_round_trips() {
    let registry = Registry::new();
    registry.counter("queuesim.events_total").add(123_456);
    registry.counter("core.explorer.candidates_total").add(25);
    registry.gauge("queuesim.server_utilization").set(0.8125);
    let h = registry.histogram("deepforest.cascade.level_fit_seconds");
    for i in 1..=200 {
        h.record(i as f64 * 1e-3);
    }
    let text = registry.to_json();
    let parsed = Value::parse(&text).expect("export must be valid JSON");

    // counters and gauges round-trip exactly
    assert_eq!(
        parsed
            .get("counters")
            .and_then(|c| c.get("queuesim.events_total"))
            .and_then(Value::as_f64),
        Some(123_456.0)
    );
    assert_eq!(
        parsed
            .get("gauges")
            .and_then(|g| g.get("queuesim.server_utilization"))
            .and_then(Value::as_f64),
        Some(0.8125)
    );
    // histogram summary fields present and consistent
    let hist = parsed
        .get("histograms")
        .and_then(|h| h.get("deepforest.cascade.level_fit_seconds"))
        .expect("histogram exported");
    assert_eq!(hist.get("count").and_then(Value::as_f64), Some(200.0));
    let p50 = hist.get("p50").and_then(Value::as_f64).expect("p50");
    let p99 = hist.get("p99").and_then(Value::as_f64).expect("p99");
    assert!(p50 <= p99, "quantiles ordered: p50 {p50} <= p99 {p99}");
    // serializing the parsed tree again is a fixed point
    assert_eq!(Value::parse(&parsed.to_string()).expect("reparse"), parsed);
}

#[test]
fn prometheus_export_parses_as_line_protocol() {
    let registry = Registry::new();
    registry.counter("profiler.samples_total").add(7);
    registry.histogram("profiler.run_seconds").record(2.0);
    for line in registry.to_prometheus().lines() {
        if line.starts_with('#') {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("name value");
        let bare = name.split('{').next().expect("metric name");
        assert!(bare.starts_with("stca_"), "namespaced: {bare}");
        assert!(!bare.contains('.'), "sanitized: {bare}");
        value.parse::<f64>().expect("numeric value");
    }
}
