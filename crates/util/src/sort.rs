//! Ordering helpers for the training hot paths.
//!
//! The deep-forest split finder presorts every feature column once per tree
//! and then keeps the per-node index arrays sorted by *stable in-place
//! partitioning* instead of re-sorting at every node. The two primitives it
//! needs — a stable argsort under IEEE total order and a stable partition
//! that reuses a caller-owned scratch buffer — live here so other crates
//! (baselines, profiler) can share them.

/// Stable argsort of `values` under [`f64::total_cmp`].
///
/// Returns the permutation `perm` such that `values[perm[0]] <=
/// values[perm[1]] <= ...`; ties keep their original relative order, and
/// NaNs sort to a deterministic position (after `+inf` for positive NaN)
/// instead of panicking or producing an unspecified order.
///
/// Indices are `u32` — the training sets this supports are bounded far
/// below `u32::MAX` rows, and halving the index width keeps the per-tree
/// sorted-column structure cache-resident.
pub fn argsort_f64(values: &[f64]) -> Vec<u32> {
    assert!(
        values.len() <= u32::MAX as usize,
        "argsort_f64 indexes with u32"
    );
    let mut perm: Vec<u32> = (0..values.len() as u32).collect();
    // `sort_by` is stable: equal values keep ascending-position order.
    perm.sort_by(|&a, &b| values[a as usize].total_cmp(&values[b as usize]));
    perm
}

/// Stable in-place partition of `items` by `pred`, using `scratch` as the
/// spill buffer (cleared on entry; capacity is reused across calls).
///
/// Elements satisfying `pred` move to the front, the rest to the back, both
/// groups in their original relative order — the same ordering contract as
/// `Iterator::partition` into two fresh `Vec`s, without the two
/// allocations. Returns the number of elements in the `true` group.
pub fn stable_partition_in_place<T: Copy>(
    items: &mut [T],
    scratch: &mut Vec<T>,
    mut pred: impl FnMut(T) -> bool,
) -> usize {
    scratch.clear();
    let mut write = 0;
    for read in 0..items.len() {
        let v = items[read];
        if pred(v) {
            items[write] = v;
            write += 1;
        } else {
            scratch.push(v);
        }
    }
    items[write..].copy_from_slice(scratch);
    write
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argsort_orders_and_is_stable() {
        let v = [3.0, 1.0, 2.0, 1.0, 3.0];
        let p = argsort_f64(&v);
        assert_eq!(p, vec![1, 3, 2, 0, 4], "ties keep original order");
    }

    #[test]
    fn argsort_handles_nan_without_panic() {
        let v = [f64::NAN, 1.0, f64::INFINITY, -1.0, f64::NAN];
        let p = argsort_f64(&v);
        assert_eq!(&p[..3], &[3, 1, 2], "finite values first");
        assert_eq!(&p[3..], &[0, 4], "NaNs last, stable among themselves");
    }

    #[test]
    fn argsort_empty() {
        assert!(argsort_f64(&[]).is_empty());
    }

    #[test]
    fn stable_partition_matches_vec_partition() {
        let src: Vec<u32> = vec![5, 2, 9, 4, 7, 0, 3, 8];
        let (evens, odds): (Vec<u32>, Vec<u32>) = src.iter().partition(|&&v| v % 2 == 0);
        let mut items = src.clone();
        let mut scratch = Vec::new();
        let nl = stable_partition_in_place(&mut items, &mut scratch, |v| v % 2 == 0);
        assert_eq!(nl, evens.len());
        assert_eq!(&items[..nl], &evens[..]);
        assert_eq!(&items[nl..], &odds[..]);
    }

    #[test]
    fn stable_partition_degenerate_groups() {
        let mut all = vec![1, 2, 3];
        let mut scratch = Vec::new();
        assert_eq!(
            stable_partition_in_place(&mut all, &mut scratch, |_| true),
            3
        );
        assert_eq!(all, vec![1, 2, 3]);
        assert_eq!(
            stable_partition_in_place(&mut all, &mut scratch, |_| false),
            0
        );
        assert_eq!(all, vec![1, 2, 3]);
    }
}
