//! A small row-major `f64` matrix shared by the learning crates.
//!
//! The deep-forest and neural-network crates both consume profile data as
//! dense 2-D arrays (rows = profiled executions, columns = features, or for
//! multi-grain scanning rows = counters, columns = time steps). Keeping one
//! matrix type in the foundation crate avoids conversion churn between them.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a flat row-major buffer. Panics if lengths disagree.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Matrix { rows, cols, data }
    }

    /// Build from nested rows. Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow a row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow a row mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy a column out.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Copy a column into a reusable buffer (cleared first). The
    /// allocation-free counterpart of [`Matrix::col`] for per-tree loops
    /// that gather every feature column.
    pub fn col_into(&self, c: usize, out: &mut Vec<f64>) {
        assert!(c < self.cols);
        out.clear();
        out.extend((0..self.rows).map(|r| self[(r, c)]));
    }

    /// Flat row-major view.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable row-major view.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Append a row. Panics if width disagrees (unless matrix is empty).
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "row width mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// New matrix containing the selected rows, in the given order.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (i, &r) in idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// New matrix with columns reordered per `perm` (`perm[i]` = source col).
    pub fn permute_cols(&self, perm: &[usize]) -> Matrix {
        assert_eq!(perm.len(), self.cols);
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let src = self.row(r);
            let dst = out.row_mut(r);
            for (i, &p) in perm.iter().enumerate() {
                dst[i] = src[p];
            }
        }
        out
    }

    /// Horizontally concatenate two matrices with equal row counts.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row count mismatch in hcat");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Per-column mean.
    pub fn col_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (m, &v) in means.iter_mut().zip(self.row(r)) {
                *m += v;
            }
        }
        if self.rows > 0 {
            for m in &mut means {
                *m /= self.rows as f64;
            }
        }
        means
    }

    /// Per-column standard deviation (population).
    pub fn col_stds(&self) -> Vec<f64> {
        let means = self.col_means();
        let mut vars = vec![0.0; self.cols];
        for r in 0..self.rows {
            for ((v, &m), &x) in vars.iter_mut().zip(&means).zip(self.row(r)) {
                let d = x - m;
                *v += d * d;
            }
        }
        if self.rows > 0 {
            for v in &mut vars {
                *v = (*v / self.rows as f64).sqrt();
            }
        }
        vars
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            writeln!(f, "  {:?}", &self.row(r)[..self.cols.min(8)])?;
        }
        if self.rows > 6 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut m = Matrix::zeros(2, 3);
        m[(0, 0)] = 1.0;
        m[(1, 2)] = 5.0;
        assert_eq!(m.row(0), &[1.0, 0.0, 0.0]);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.col(2), vec![0.0, 5.0]);
    }

    #[test]
    fn from_rows_and_push() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        m.push_row(&[5.0, 6.0]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.row(2), &[5.0, 6.0]);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn select_rows_orders() {
        let m = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[2.0]);
        assert_eq!(s.row(1), &[0.0]);
    }

    #[test]
    fn permute_cols_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let p = m.permute_cols(&[2, 0, 1]);
        assert_eq!(p.row(0), &[3.0, 1.0, 2.0]);
    }

    #[test]
    fn hcat_widths() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let c = a.hcat(&b);
        assert_eq!(c.cols(), 3);
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn col_stats() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 10.0]]);
        assert_eq!(m.col_means(), vec![2.0, 10.0]);
        let s = m.col_stds();
        assert!((s[0] - 1.0).abs() < 1e-12);
        assert_eq!(s[1], 0.0);
    }

    #[test]
    fn col_into_matches_col() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let mut buf = vec![9.0; 8];
        m.col_into(1, &mut buf);
        assert_eq!(buf, m.col(1));
    }

    #[test]
    fn push_row_into_empty_sets_width() {
        let mut m = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0, 3.0]);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.rows(), 1);
    }
}
