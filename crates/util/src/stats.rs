//! Online statistics and percentile estimation.
//!
//! Response-time experiments report means, medians and tail percentiles
//! (the paper reports medians and 95th percentiles throughout). The
//! [`OnlineStats`] accumulator uses Welford's algorithm; [`Percentiles`]
//! stores samples and answers arbitrary quantile queries with linear
//! interpolation (type-7, the R/NumPy default).

/// Welford single-pass accumulator for count/mean/variance/min/max.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observed value (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observed value (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Quantile of a mutable slice using linear interpolation between order
/// statistics (sorts the slice). `q` in `[0,1]`. Panics on empty input.
pub fn quantile_in_place(values: &mut [f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q));
    values.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let h = q * (values.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        values[lo]
    } else {
        values[lo] + (h - lo as f64) * (values[hi] - values[lo])
    }
}

/// Sample store supporting arbitrary quantile queries.
#[derive(Debug, Clone, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Empty store.
    pub fn new() -> Self {
        Percentiles {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Store with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Percentiles {
            samples: Vec::with_capacity(cap),
            sorted: true,
        }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Add many samples.
    pub fn extend_from(&mut self, xs: &[f64]) {
        self.samples.extend_from_slice(xs);
        self.sorted = false;
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Quantile `q` in `[0,1]`. Panics if empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!(!self.samples.is_empty(), "quantile of empty sample set");
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let h = q.clamp(0.0, 1.0) * (self.samples.len() - 1) as f64;
        let lo = h.floor() as usize;
        let hi = h.ceil() as usize;
        if lo == hi {
            self.samples[lo]
        } else {
            self.samples[lo] + (h - lo as f64) * (self.samples[hi] - self.samples[lo])
        }
    }

    /// Median (p50).
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// 95th percentile — the paper's tail-latency metric.
    pub fn p95(&mut self) -> f64 {
        self.quantile(0.95)
    }

    /// Arithmetic mean. Panics if empty.
    pub fn mean(&self) -> f64 {
        assert!(!self.samples.is_empty());
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Borrow the raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_mean_var() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // population var is 4; sample var = 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn quantiles_interpolate() {
        let mut p = Percentiles::new();
        p.extend_from(&[1.0, 2.0, 3.0, 4.0]);
        assert!((p.median() - 2.5).abs() < 1e-12);
        assert_eq!(p.quantile(0.0), 1.0);
        assert_eq!(p.quantile(1.0), 4.0);
    }

    #[test]
    fn p95_of_uniform_grid() {
        let mut p = Percentiles::new();
        for i in 0..=100 {
            p.push(i as f64);
        }
        assert!((p.p95() - 95.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn quantile_empty_panics() {
        Percentiles::new().median();
    }

    #[test]
    fn quantile_in_place_single() {
        let mut v = [42.0];
        assert_eq!(quantile_in_place(&mut v, 0.5), 42.0);
    }
}
