//! Deterministic random number generation.
//!
//! The cache simulator executes tens of millions of memory accesses per
//! experiment, so the hot path uses a hand-rolled xoshiro256++ generator
//! rather than going through the `rand` trait machinery; everything the
//! workspace needs (uniform, gaussian, exponential, shuffles, sampling)
//! lives directly on [`Rng64`].
//!
//! Seeds are derived with SplitMix64 so that a single experiment seed can fan
//! out into independent per-component streams (`derive_stream`).

/// SplitMix64 step, used for seeding and stream derivation.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ deterministic generator.
///
/// Not cryptographic; chosen for speed and excellent statistical quality in
/// simulation workloads.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Create a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start in the all-zero state.
        if s.iter().all(|&x| x == 0) {
            s[0] = 0x1;
        }
        Rng64 { s }
    }

    /// Derive an independent stream for a named sub-component. Streams with
    /// different tags are statistically independent of each other and of the
    /// parent.
    pub fn derive_stream(&self, tag: u64) -> Rng64 {
        let mut sm = self.s[0] ^ self.s[2] ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        if s.iter().all(|&x| x == 0) {
            s[0] = tag | 1;
        }
        Rng64 { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f64 in `(0, 1]` — safe as a log() argument.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Uniform integer in `[0, bound)` using Lemire's method.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform usize in `[0, bound)`.
    #[inline]
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform f64 in `[lo, hi)`.
    #[inline]
    pub fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal via Marsaglia polar method.
    pub fn next_gaussian(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Exponential draw with the given rate (mean `1/rate`).
    #[inline]
    pub fn next_exp(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        -self.next_f64_open().ln() / rate
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (k <= n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        // partial Fisher-Yates: first k positions are the sample
        for i in 0..k {
            let j = i + self.next_index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

/// A forkable source of *tagged* random streams.
///
/// `SeedStream` is the randomness discipline for parallel code: a stream is
/// immutable, and every unit of work derives its own independent [`Rng64`]
/// from a tag (`stream.rng(task_index)`), so results do not depend on the
/// order in which tasks draw random numbers — and therefore not on thread
/// count or scheduling. Contrast with threading one `&mut Rng64` through a
/// loop, where any reordering changes every subsequent draw.
///
/// Tags only need to be unique within one stream; nested components fork a
/// sub-stream first (`stream.derive(COMPONENT_TAG)`) so their tag spaces
/// cannot collide.
#[derive(Debug, Clone)]
pub struct SeedStream {
    root: Rng64,
}

impl SeedStream {
    /// Stream rooted at a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeedStream {
            root: Rng64::new(seed),
        }
    }

    /// Fork a stream off an existing generator without consuming from it.
    pub fn from_rng(rng: &Rng64, tag: u64) -> Self {
        SeedStream {
            root: rng.derive_stream(tag),
        }
    }

    /// The tagged generator for one unit of work.
    pub fn rng(&self, tag: u64) -> Rng64 {
        self.root.derive_stream(tag)
    }

    /// Fork an independent sub-stream for a nested component.
    pub fn derive(&self, tag: u64) -> SeedStream {
        SeedStream {
            root: self.root.derive_stream(tag),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn derived_streams_are_independent() {
        let root = Rng64::new(7);
        let mut s1 = root.derive_stream(1);
        let mut s2 = root.derive_stream(2);
        let same = (0..32).filter(|_| s1.next_u64() == s2.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng64::new(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = Rng64::new(11);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = rng.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Rng64::new(13);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.next_gaussian();
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng64::new(17);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_exp(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng64::new(23);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn seed_stream_is_order_free() {
        let stream = SeedStream::new(99);
        // drawing stream 5 then 3 equals drawing 3 then 5
        let a5: Vec<u64> = {
            let mut r = stream.rng(5);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let a3: Vec<u64> = {
            let mut r = stream.rng(3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b3: Vec<u64> = {
            let mut r = stream.rng(3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b5: Vec<u64> = {
            let mut r = stream.rng(5);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a5, b5);
        assert_eq!(a3, b3);
        // sub-streams with the same local tags stay independent
        let mut x = stream.derive(1).rng(7);
        let mut y = stream.derive(2).rng(7);
        let same = (0..32).filter(|_| x.next_u64() == y.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng64::new(29);
        let s = rng.sample_indices(100, 30);
        assert_eq!(s.len(), 30);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 30);
        assert!(t.iter().all(|&i| i < 100));
    }
}
