//! # stca-util
//!
//! Shared foundations for the short-term cache allocation (STCA) reproduction:
//! deterministic random number generation, probability distributions used by
//! workload and arrival models, online statistics and percentile estimation,
//! a small row-major matrix type shared by the learning crates, and a compact
//! k-means implementation used by stratified profiling and concept clustering.
//!
//! Everything in this crate is deterministic given a seed: experiments in the
//! paper reproduction must be replayable bit-for-bit so that figure harnesses
//! and tests agree across runs.

pub mod args;
pub mod dist;
pub mod kmeans;
pub mod matrix;
pub mod rng;
pub mod sort;
pub mod stats;

pub use args::{ArgError, Args, SpecError, SpecErrorKind, SpecLocation};
pub use dist::Distribution;
pub use matrix::Matrix;
pub use rng::{Rng64, SeedStream};
pub use sort::{argsort_f64, stable_partition_in_place};
pub use stats::{OnlineStats, Percentiles};

/// Simulated time, in seconds. All simulators in the workspace use seconds as
/// the base unit; workload specs express service times in seconds too.
pub type Seconds = f64;

/// Absolute percent error between a prediction and an observation, in
/// percent (e.g. `11.0` means 11%). Matches the accuracy metric used
/// throughout the paper's evaluation (Figures 6 and 7).
///
/// Observations of exactly zero would divide by zero; the profiling layer
/// never produces zero response times, but we guard with a small floor so
/// the metric stays finite on degenerate inputs.
pub fn absolute_percent_error(predicted: f64, observed: f64) -> f64 {
    let denom = observed.abs().max(1e-12);
    ((predicted - observed).abs() / denom) * 100.0
}

/// Median absolute percent error over paired predictions/observations.
pub fn median_ape(predicted: &[f64], observed: &[f64]) -> f64 {
    assert_eq!(predicted.len(), observed.len(), "paired slices required");
    let mut apes: Vec<f64> = predicted
        .iter()
        .zip(observed)
        .map(|(&p, &o)| absolute_percent_error(p, o))
        .collect();
    stats::quantile_in_place(&mut apes, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ape_basics() {
        assert!((absolute_percent_error(110.0, 100.0) - 10.0).abs() < 1e-9);
        assert!((absolute_percent_error(90.0, 100.0) - 10.0).abs() < 1e-9);
        assert_eq!(absolute_percent_error(5.0, 5.0), 0.0);
    }

    #[test]
    fn ape_zero_observed_is_finite() {
        assert!(absolute_percent_error(1.0, 0.0).is_finite());
    }

    #[test]
    fn median_ape_odd() {
        let pred = [10.0, 20.0, 30.0];
        let obs = [10.0, 10.0, 10.0]; // APEs: 0, 100, 200
        assert!((median_ape(&pred, &obs) - 100.0).abs() < 1e-9);
    }
}
