//! Lloyd's k-means with k-means++ seeding.
//!
//! Used in two places in the reproduction, both from the paper:
//! * stratified profiling (§4): seed experiments are clustered by effective
//!   cache allocation and new settings are generated near cluster centroids;
//! * insight extraction (§5.2): workloads are clustered by the concepts the
//!   deep forest learned, revealing the arrival-rate/service-time/timeout
//!   interaction that raw counters alone do not show.

use crate::rng::Rng64;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centers, `k x dims`.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster assignment per input point.
    pub assignment: Vec<usize>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Iterations executed before convergence (or the cap).
    pub iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// Run k-means over `points` (each a dims-length vector).
///
/// `k` is clamped to the number of points. Empty clusters are re-seeded from
/// the point farthest from its centroid, so the result always has `k`
/// non-degenerate clusters when there are at least `k` distinct points.
pub fn kmeans(points: &[Vec<f64>], k: usize, max_iters: usize, rng: &mut Rng64) -> KMeansResult {
    assert!(!points.is_empty(), "kmeans requires at least one point");
    let dims = points[0].len();
    assert!(points.iter().all(|p| p.len() == dims), "ragged points");
    let k = k.min(points.len()).max(1);

    // k-means++ seeding
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.next_index(points.len())].clone());
    let mut dist2: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = dist2.iter().sum();
        let next = if total <= 0.0 {
            // all points coincide with some centroid; pick arbitrary
            rng.next_index(points.len())
        } else {
            let mut target = rng.next_f64() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in dist2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(points[next].clone());
        for (d, p) in dist2.iter_mut().zip(points) {
            *d = d.min(sq_dist(p, centroids.last().expect("nonempty")));
        }
    }

    let mut assignment = vec![0usize; points.len()];
    let mut iterations = 0;
    for iter in 0..max_iters {
        iterations = iter + 1;
        // assign
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = sq_dist(p, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed && iter > 0 {
            break;
        }
        // update
        let mut sums = vec![vec![0.0; dims]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignment) {
            counts[a] += 1;
            for (s, &x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // re-seed empty cluster at the point farthest from its centroid
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(i, p), (j, q)| {
                        sq_dist(p, &centroids[assignment[*i]])
                            .partial_cmp(&sq_dist(q, &centroids[assignment[*j]]))
                            .expect("finite distances")
                    })
                    .map(|(i, _)| i)
                    .expect("nonempty points");
                centroids[c] = points[far].clone();
            } else {
                for (cc, s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *cc = s / counts[c] as f64;
                }
            }
        }
    }

    let inertia = points
        .iter()
        .zip(&assignment)
        .map(|(p, &a)| sq_dist(p, &centroids[a]))
        .sum();
    KMeansResult {
        centroids,
        assignment,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: f64, n: usize, rng: &mut Rng64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                vec![
                    center + rng.next_gaussian() * 0.1,
                    center + rng.next_gaussian() * 0.1,
                ]
            })
            .collect()
    }

    #[test]
    fn separates_two_blobs() {
        let mut rng = Rng64::new(1);
        let mut pts = blob(0.0, 50, &mut rng);
        pts.extend(blob(10.0, 50, &mut rng));
        let res = kmeans(&pts, 2, 100, &mut rng);
        // all points in the same blob share an assignment
        let a0 = res.assignment[0];
        assert!(res.assignment[..50].iter().all(|&a| a == a0));
        let a1 = res.assignment[50];
        assert!(res.assignment[50..].iter().all(|&a| a == a1));
        assert_ne!(a0, a1);
        assert!(res.inertia < 10.0);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let mut rng = Rng64::new(2);
        let pts = vec![vec![1.0], vec![2.0]];
        let res = kmeans(&pts, 10, 10, &mut rng);
        assert_eq!(res.centroids.len(), 2);
    }

    #[test]
    fn identical_points_converge() {
        let mut rng = Rng64::new(3);
        let pts = vec![vec![5.0, 5.0]; 20];
        let res = kmeans(&pts, 3, 50, &mut rng);
        assert!(res.inertia < 1e-9);
    }

    #[test]
    fn single_cluster() {
        let mut rng = Rng64::new(4);
        let pts = blob(1.0, 30, &mut rng);
        let res = kmeans(&pts, 1, 50, &mut rng);
        assert!((res.centroids[0][0] - 1.0).abs() < 0.1);
        assert!(res.assignment.iter().all(|&a| a == 0));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = Rng64::new(9);
        let mut r2 = Rng64::new(9);
        let pts: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 7) as f64, (i % 3) as f64])
            .collect();
        let a = kmeans(&pts, 4, 100, &mut r1);
        let b = kmeans(&pts, 4, 100, &mut r2);
        assert_eq!(a.assignment, b.assignment);
    }
}
