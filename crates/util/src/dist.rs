//! Probability distributions for workload and arrival modeling.
//!
//! Service-time and inter-arrival distributions in the paper's test
//! environment are not all exponential: Spark stages are close to
//! deterministic with jitter, microservice chains are right-skewed
//! (lognormal-ish), and key-value lookups are nearly constant with a heavy
//! tail. The [`Distribution`] enum covers those shapes and keeps experiment
//! configuration serializable as plain data.

use crate::rng::Rng64;

/// A one-dimensional sampling distribution over non-negative values.
#[derive(Debug, Clone, PartialEq)]
pub enum Distribution {
    /// Always the same value.
    Deterministic(f64),
    /// Uniform on `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Exponential with the given mean.
    Exponential { mean: f64 },
    /// Lognormal parameterized by the *target* mean and the sigma of the
    /// underlying normal (shape). Heavier `sigma` means a heavier tail.
    LogNormal { mean: f64, sigma: f64 },
    /// Two-branch hyperexponential: with probability `p` the mean is
    /// `mean_a`, else `mean_b`. Captures bimodal query mixes.
    HyperExp { p: f64, mean_a: f64, mean_b: f64 },
    /// Bounded Pareto with shape `alpha` on `[lo, hi]`; heavy-tailed
    /// service demands.
    BoundedPareto { alpha: f64, lo: f64, hi: f64 },
}

impl Distribution {
    /// Draw one sample.
    pub fn sample(&self, rng: &mut Rng64) -> f64 {
        match *self {
            Distribution::Deterministic(v) => v,
            Distribution::Uniform { lo, hi } => rng.next_range(lo, hi),
            Distribution::Exponential { mean } => rng.next_exp(1.0 / mean),
            Distribution::LogNormal { mean, sigma } => {
                // mean of lognormal = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2
                let mu = mean.ln() - sigma * sigma / 2.0;
                (mu + sigma * rng.next_gaussian()).exp()
            }
            Distribution::HyperExp { p, mean_a, mean_b } => {
                let mean = if rng.next_bool(p) { mean_a } else { mean_b };
                rng.next_exp(1.0 / mean)
            }
            Distribution::BoundedPareto { alpha, lo, hi } => {
                let u = rng.next_f64();
                let la = lo.powf(alpha);
                let ha = hi.powf(alpha);
                let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha);
                x.clamp(lo, hi)
            }
        }
    }

    /// Analytic mean of the distribution.
    pub fn mean(&self) -> f64 {
        match *self {
            Distribution::Deterministic(v) => v,
            Distribution::Uniform { lo, hi } => 0.5 * (lo + hi),
            Distribution::Exponential { mean } => mean,
            Distribution::LogNormal { mean, .. } => mean,
            Distribution::HyperExp { p, mean_a, mean_b } => p * mean_a + (1.0 - p) * mean_b,
            Distribution::BoundedPareto { alpha, lo, hi } => {
                if (alpha - 1.0).abs() < 1e-12 {
                    let la = lo.powf(alpha);
                    let ha = hi.powf(alpha);
                    // limit form for alpha == 1
                    la * (hi / lo).ln() / (1.0 - la / ha)
                } else {
                    let la = lo.powf(alpha);
                    let ha = hi.powf(alpha);
                    (la / (1.0 - la / ha))
                        * (alpha / (alpha - 1.0))
                        * (1.0 / lo.powf(alpha - 1.0) - 1.0 / hi.powf(alpha - 1.0))
                }
            }
        }
    }

    /// Scale the distribution so its mean becomes `target_mean`, preserving
    /// shape. Used to normalize arrival rates relative to service times
    /// (Table 2 expresses inter-arrival as a percentage of service time).
    pub fn scaled_to_mean(&self, target_mean: f64) -> Distribution {
        assert!(target_mean > 0.0);
        let k = target_mean / self.mean();
        self.scaled(k)
    }

    /// Multiply all samples by `k` (k > 0).
    pub fn scaled(&self, k: f64) -> Distribution {
        assert!(k > 0.0, "scale must be positive");
        match *self {
            Distribution::Deterministic(v) => Distribution::Deterministic(v * k),
            Distribution::Uniform { lo, hi } => Distribution::Uniform {
                lo: lo * k,
                hi: hi * k,
            },
            Distribution::Exponential { mean } => Distribution::Exponential { mean: mean * k },
            Distribution::LogNormal { mean, sigma } => Distribution::LogNormal {
                mean: mean * k,
                sigma,
            },
            Distribution::HyperExp { p, mean_a, mean_b } => Distribution::HyperExp {
                p,
                mean_a: mean_a * k,
                mean_b: mean_b * k,
            },
            Distribution::BoundedPareto { alpha, lo, hi } => Distribution::BoundedPareto {
                alpha,
                lo: lo * k,
                hi: hi * k,
            },
        }
    }
}

/// Zipf sampler over ranks `0..n` with parameter `theta` (0 = uniform,
/// larger = more skew). Used for key popularity in the Redis/YCSB workload
/// model and for reuse-distance skew in data-reuse-heavy benchmarks.
///
/// Uses the rejection-inversion method of Hörmann & Derflinger, which is
/// O(1) per sample and exact.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    // precomputed constants
    hx0: f64,
    hxm: f64,
    s: f64,
}

impl Zipf {
    /// Create a Zipf sampler over `n` items with skew `theta > 0`,
    /// `theta != 1` handled via the generalized harmonic form.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1);
        assert!(theta > 0.0, "theta must be positive");
        let q = theta;
        let h = |x: f64| -> f64 {
            if (q - 1.0).abs() < 1e-9 {
                (1.0 + x).ln()
            } else {
                ((1.0 + x).powf(1.0 - q) - 1.0) / (1.0 - q)
            }
        };
        let hx0 = h(0.5) - 1.0; // h(x0) with shifted origin
        let hxm = h(n as f64 - 0.5);
        let s = 1.0 - Self::h_inv_static(q, h(1.5) - 1.0);
        Zipf {
            n,
            theta: q,
            hx0,
            hxm,
            s,
        }
    }

    fn h_inv_static(q: f64, x: f64) -> f64 {
        if (q - 1.0).abs() < 1e-9 {
            x.exp() - 1.0
        } else {
            (1.0 + x * (1.0 - q)).powf(1.0 / (1.0 - q)) - 1.0
        }
    }

    fn h(&self, x: f64) -> f64 {
        if (self.theta - 1.0).abs() < 1e-9 {
            (1.0 + x).ln()
        } else {
            ((1.0 + x).powf(1.0 - self.theta) - 1.0) / (1.0 - self.theta)
        }
    }

    /// Draw a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut Rng64) -> u64 {
        if self.n == 1 {
            return 0;
        }
        loop {
            let u = self.hx0 + rng.next_f64() * (self.hxm - self.hx0);
            let x = Self::h_inv_static(self.theta, u);
            let k = (x + 0.5).floor().clamp(0.0, (self.n - 1) as f64);
            // acceptance test
            if k - x <= self.s || u >= self.h(k + 0.5) - (1.0 + k).powf(-self.theta) {
                return k as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(d: &Distribution, n: usize, seed: u64) -> f64 {
        let mut rng = Rng64::new(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Distribution::Deterministic(3.5);
        let mut rng = Rng64::new(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
    }

    #[test]
    fn exponential_sample_mean_matches() {
        let d = Distribution::Exponential { mean: 2.0 };
        let m = sample_mean(&d, 100_000, 2);
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn lognormal_sample_mean_matches() {
        let d = Distribution::LogNormal {
            mean: 5.0,
            sigma: 0.8,
        };
        let m = sample_mean(&d, 200_000, 3);
        assert!((m - 5.0).abs() < 0.15, "mean {m}");
    }

    #[test]
    fn hyperexp_mean() {
        let d = Distribution::HyperExp {
            p: 0.3,
            mean_a: 1.0,
            mean_b: 10.0,
        };
        assert!((d.mean() - 7.3).abs() < 1e-12);
        let m = sample_mean(&d, 200_000, 4);
        assert!((m - 7.3).abs() < 0.2, "mean {m}");
    }

    #[test]
    fn bounded_pareto_in_range() {
        let d = Distribution::BoundedPareto {
            alpha: 1.5,
            lo: 1.0,
            hi: 100.0,
        };
        let mut rng = Rng64::new(5);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=100.0).contains(&x));
        }
        let m = sample_mean(&d, 200_000, 6);
        assert!(
            (m - d.mean()).abs() / d.mean() < 0.05,
            "mean {m} vs {}",
            d.mean()
        );
    }

    #[test]
    fn scaled_to_mean_preserves_shape() {
        let d = Distribution::HyperExp {
            p: 0.5,
            mean_a: 1.0,
            mean_b: 3.0,
        };
        let s = d.scaled_to_mean(10.0);
        assert!((s.mean() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_most_popular_rank_dominates() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = Rng64::new(7);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 should beat rank 10");
        assert!(counts[0] > counts[100] * 3);
        // all samples in range (indexing would have panicked otherwise)
    }

    #[test]
    fn zipf_single_item() {
        let z = Zipf::new(1, 0.9);
        let mut rng = Rng64::new(8);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn zipf_theta_one_regression() {
        let z = Zipf::new(100, 1.0);
        let mut rng = Rng64::new(9);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }
}
