//! Shared command-line argument parsing and key=value spec errors.
//!
//! Every binary in the workspace takes the same flag shape — `--name value`
//! (or `-n value`, or `--name=value`) pairs after the subcommand — and every
//! one of them used to hand-roll the loop. [`Args`] is the one shared
//! implementation; parse failures are typed ([`ArgError`]) so binaries can
//! map them onto the workspace-wide exit-2 usage convention.
//!
//! [`SpecError`] is the companion error for *value-level* mini-languages:
//! comma-separated `key=value` specs (fault plans) and the scenario file
//! format. It always names the offending key and value and lists the valid
//! keys, so a typo'd spec tells the user what was meant, not just that
//! something was wrong.

use std::path::PathBuf;

/// A typed argument-parsing failure. Binaries treat any variant as a usage
/// error (exit code 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A positional token appeared where a `--flag` was expected.
    NotAFlag { token: String },
    /// A flag was given without a following value.
    MissingValue { flag: String },
    /// A flag the command requires was absent.
    MissingRequired { flag: String },
    /// A flag's value failed to parse as the expected type.
    BadValue {
        flag: String,
        value: String,
        why: String,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::NotAFlag { token } => write!(f, "expected a --flag, got {token:?}"),
            ArgError::MissingValue { flag } => write!(f, "flag --{flag} needs a value"),
            ArgError::MissingRequired { flag } => write!(f, "missing required flag --{flag}"),
            ArgError::BadValue { flag, value, why } => {
                write!(f, "bad --{flag} {value:?}: {why}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Parsed `--flag value` pairs, in argv order. Duplicate flags keep the
/// first occurrence (matching the historical behavior of every binary).
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    /// Parse an argv slice (without the program name / subcommand).
    /// Accepts `--name value`, `-n value`, and `--name=value`.
    pub fn parse<S: AsRef<str>>(argv: &[S]) -> Result<Args, ArgError> {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let token = argv[i].as_ref();
            let key = token
                .strip_prefix("--")
                .or_else(|| token.strip_prefix('-'))
                .ok_or_else(|| ArgError::NotAFlag {
                    token: token.to_string(),
                })?;
            if let Some((k, v)) = key.split_once('=') {
                flags.push((k.to_string(), v.to_string()));
                i += 1;
                continue;
            }
            let value = argv.get(i + 1).ok_or_else(|| ArgError::MissingValue {
                flag: key.to_string(),
            })?;
            flags.push((key.to_string(), value.as_ref().to_string()));
            i += 2;
        }
        Ok(Args { flags })
    }

    /// Parse the process argv, skipping the program name.
    pub fn from_env() -> Result<Args, ArgError> {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        Args::parse(&argv)
    }

    /// The raw value of a flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value of a required flag.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name).ok_or_else(|| ArgError::MissingRequired {
            flag: name.to_string(),
        })
    }

    /// Parse a flag's value, falling back to `default` when absent.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| ArgError::BadValue {
                flag: name.to_string(),
                value: v.to_string(),
                why: format!("{e}"),
            }),
        }
    }

    /// Parse a required flag's value.
    pub fn require_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError>
    where
        T::Err: std::fmt::Display,
    {
        let v = self.require(name)?;
        v.parse().map_err(|e| ArgError::BadValue {
            flag: name.to_string(),
            value: v.to_string(),
            why: format!("{e}"),
        })
    }

    /// A flag's value as a path.
    pub fn path(&self, name: &str) -> Option<PathBuf> {
        self.get(name).map(PathBuf::from)
    }

    /// All parsed `(flag, value)` pairs, in argv order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.flags.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Whether the flag appeared at all.
    pub fn has(&self, name: &str) -> bool {
        self.get(name).is_some()
    }
}

/// Where in a spec a [`SpecError`] points: a 1-based line for file-shaped
/// specs, a 0-based token position for one-line comma specs, or nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecLocation {
    /// No useful position (single-token specs).
    None,
    /// 0-based comma-separated token index.
    Token(usize),
    /// 1-based line number in a spec file.
    Line(usize),
}

/// A typed failure in a `key=value` mini-language (fault plans, scenario
/// files). Rendered messages always name the offending key/value and list
/// the valid alternatives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// What was being parsed, e.g. `"fault plan"` or
    /// `"scenario examples/serve-heavy.stca"`.
    pub context: String,
    /// Where in the spec the failure sits.
    pub location: SpecLocation,
    /// The failure itself.
    pub kind: SpecErrorKind,
}

/// The kinds of spec failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecErrorKind {
    /// A token that is neither a known bare word nor `key=value`.
    Malformed { token: String, expected: String },
    /// `key=value` with a key the spec does not define.
    UnknownKey {
        key: String,
        valid: &'static [&'static str],
    },
    /// A known key whose value failed to parse as the expected type.
    BadValue {
        key: String,
        value: String,
        want: String,
    },
    /// A well-typed value outside the key's legal range.
    OutOfRange {
        key: String,
        value: String,
        range: String,
    },
}

impl SpecError {
    /// Build an error with no position information.
    pub fn new(context: impl Into<String>, kind: SpecErrorKind) -> Self {
        SpecError {
            context: context.into(),
            location: SpecLocation::None,
            kind,
        }
    }

    /// Attach a location.
    pub fn at(mut self, location: SpecLocation) -> Self {
        self.location = location;
        self
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.context)?;
        match self.location {
            SpecLocation::None => {}
            SpecLocation::Token(i) => write!(f, ", token {i}")?,
            SpecLocation::Line(l) => write!(f, ", line {l}")?,
        }
        write!(f, ": ")?;
        match &self.kind {
            SpecErrorKind::Malformed { token, expected } => {
                write!(f, "malformed token {token:?}: expected {expected}")
            }
            SpecErrorKind::UnknownKey { key, valid } => {
                write!(f, "unknown key {key:?} (valid keys: {})", valid.join(", "))
            }
            SpecErrorKind::BadValue { key, value, want } => {
                write!(f, "{key}={value:?}: want {want}")
            }
            SpecErrorKind::OutOfRange { key, value, range } => {
                write!(f, "{key}={value}: out of range (want {range})")
            }
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flag_shapes() {
        let a = Args::parse(&argv(&["--scale", "quick", "-n", "4", "--out=x.json"])).unwrap();
        assert_eq!(a.get("scale"), Some("quick"));
        assert_eq!(a.get("n"), Some("4"));
        assert_eq!(a.get("out"), Some("x.json"));
        assert!(!a.has("missing"));
    }

    #[test]
    fn first_occurrence_wins() {
        let a = Args::parse(&argv(&["--seed", "1", "--seed", "2"])).unwrap();
        assert_eq!(a.get("seed"), Some("1"));
    }

    #[test]
    fn typed_errors() {
        assert_eq!(
            Args::parse(&argv(&["positional"])).unwrap_err(),
            ArgError::NotAFlag {
                token: "positional".into()
            }
        );
        assert_eq!(
            Args::parse(&argv(&["--seed"])).unwrap_err(),
            ArgError::MissingValue {
                flag: "seed".into()
            }
        );
        let a = Args::parse(&argv(&["--seed", "x"])).unwrap();
        assert!(matches!(
            a.get_parsed("seed", 0u64),
            Err(ArgError::BadValue { .. })
        ));
        assert_eq!(
            a.require("pair").unwrap_err(),
            ArgError::MissingRequired {
                flag: "pair".into()
            }
        );
    }

    #[test]
    fn get_parsed_defaults() {
        let a = Args::parse(&argv(&["--n", "7"])).unwrap();
        assert_eq!(a.get_parsed("n", 3u32).unwrap(), 7);
        assert_eq!(a.get_parsed("m", 3u32).unwrap(), 3);
    }

    #[test]
    fn spec_error_messages_name_key_and_valid_set() {
        let e = SpecError::new(
            "fault plan",
            SpecErrorKind::UnknownKey {
                key: "wat".into(),
                valid: &["seed", "crash"],
            },
        )
        .at(SpecLocation::Token(2));
        let msg = e.to_string();
        assert!(msg.contains("\"wat\""), "{msg}");
        assert!(msg.contains("seed, crash"), "{msg}");
        assert!(msg.contains("token 2"), "{msg}");
    }
}
