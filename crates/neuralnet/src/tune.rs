//! Random hyperparameter search — the stand-in for TUNE / PipeTune.
//!
//! The paper tuned its CNN baseline over epochs, batch size, learning rate,
//! neuron count and drop rate. This module samples configurations uniformly
//! from those ranges, trains each on a training split, scores on a
//! validation split, and returns trials sorted by validation MSE.

use crate::net::{ConvNet, NetConfig, NnSample};
use stca_util::{Rng64, SeedStream};

/// Ranges to sample hyperparameters from.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Epoch range (inclusive).
    pub epochs: (usize, usize),
    /// Batch-size choices.
    pub batch_sizes: Vec<usize>,
    /// Log-uniform learning-rate range.
    pub learning_rate: (f64, f64),
    /// Hidden-width choices ("number of neurons").
    pub hidden: Vec<usize>,
    /// Dropout range.
    pub dropout: (f64, f64),
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace {
            epochs: (30, 120),
            batch_sizes: vec![8, 16, 32],
            learning_rate: (1e-3, 5e-2),
            hidden: vec![16, 32, 64],
            dropout: (0.0, 0.3),
        }
    }
}

impl SearchSpace {
    /// Draw one configuration.
    pub fn sample(&self, rng: &mut Rng64) -> NetConfig {
        let lr = (self.learning_rate.0.ln()
            + rng.next_f64() * (self.learning_rate.1.ln() - self.learning_rate.0.ln()))
        .exp();
        NetConfig {
            epochs: self.epochs.0 + rng.next_index(self.epochs.1 - self.epochs.0 + 1),
            batch_size: self.batch_sizes[rng.next_index(self.batch_sizes.len())],
            learning_rate: lr,
            hidden: self.hidden[rng.next_index(self.hidden.len())],
            dropout: rng.next_range(self.dropout.0, self.dropout.1),
            seed: rng.next_u64(),
            ..Default::default()
        }
    }
}

/// One search trial.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// The configuration trained.
    pub config: NetConfig,
    /// Validation MSE.
    pub val_mse: f64,
    /// Final training MSE.
    pub train_mse: f64,
}

/// Run `trials` random configurations; returns results sorted by validation
/// MSE (best first).
///
/// Each trial's configuration is drawn from its own tagged stream, so the
/// trials are independent and can be trained in parallel with results
/// identical at any thread count. Ties in validation MSE keep draw order
/// (stable sort), which keeps the winner deterministic too.
pub fn random_search(
    train: (&[NnSample], &[f64]),
    val: (&[NnSample], &[f64]),
    space: &SearchSpace,
    trials: usize,
    stream: &SeedStream,
) -> Vec<TrialResult> {
    assert!(trials >= 1);
    let mut results = stca_exec::par_map_range(trials, |t| {
        let config = space.sample(&mut stream.rng(t as u64));
        let net = ConvNet::fit(train.0, train.1, config);
        let pred = net.predict_all(val.0);
        let val_mse = pred
            .iter()
            .zip(val.1)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / val.1.len() as f64;
        TrialResult {
            config,
            val_mse,
            train_mse: net.final_loss(),
        }
    });
    results.sort_by(|a, b| a.val_mse.partial_cmp(&b.val_mse).expect("finite MSE"));
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use stca_util::Matrix;

    fn data(n: usize, seed: u64) -> (Vec<NnSample>, Vec<f64>) {
        let mut rng = Rng64::new(seed);
        (0..n)
            .map(|_| {
                let a = rng.next_f64();
                (
                    NnSample {
                        scalars: vec![a],
                        trace: Matrix::zeros(0, 0),
                    },
                    2.0 * a,
                )
            })
            .unzip()
    }

    #[test]
    fn search_returns_sorted_trials() {
        let (tr_s, tr_y) = data(80, 1);
        let (va_s, va_y) = data(30, 2);
        let space = SearchSpace {
            epochs: (5, 15),
            ..Default::default()
        };
        let results = random_search(
            (&tr_s, &tr_y),
            (&va_s, &va_y),
            &space,
            4,
            &SeedStream::new(3),
        );
        assert_eq!(results.len(), 4);
        for w in results.windows(2) {
            assert!(w[0].val_mse <= w[1].val_mse);
        }
    }

    #[test]
    fn sampled_configs_stay_in_space() {
        let space = SearchSpace::default();
        let mut rng = Rng64::new(4);
        for _ in 0..50 {
            let c = space.sample(&mut rng);
            assert!(c.epochs >= 30 && c.epochs <= 120);
            assert!(space.batch_sizes.contains(&c.batch_size));
            assert!(c.learning_rate >= 1e-3 && c.learning_rate <= 5e-2);
            assert!(space.hidden.contains(&c.hidden));
            assert!((0.0..=0.3).contains(&c.dropout));
        }
    }
}
