//! Residual MLP — the paper's stated future work.
//!
//! §4.1 closes: *"In future work, we will explore the reliability and
//! accuracy tradeoff with more complicated neural network structures, e.g.,
//! residual and long short-term memory (LSTM) networks."* This module
//! implements the residual half of that agenda: an MLP whose hidden blocks
//! compute `x + f(x)` (identity skip connections), trained with the same
//! SGD-momentum/clipping machinery as [`crate::net::ConvNet`]. The Figure-5
//! harness can include it to extend the stability study beyond plain CNNs.
//!
//! Architecture: `dense_in -> [residual block]*depth -> dense_out(1)` where
//! a block is `x + W2 relu(W1 x)` (both `hidden x hidden`).

use stca_util::Rng64;

/// Residual-network hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResNetConfig {
    /// Hidden width (all blocks share it).
    pub hidden: usize,
    /// Number of residual blocks.
    pub depth: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// SGD momentum.
    pub momentum: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Init/shuffle seed.
    pub seed: u64,
}

impl Default for ResNetConfig {
    fn default() -> Self {
        ResNetConfig {
            hidden: 32,
            depth: 2,
            learning_rate: 0.01,
            momentum: 0.9,
            batch_size: 16,
            epochs: 80,
            seed: 1,
        }
    }
}

struct Linear {
    w: Vec<f64>, // out x in
    b: Vec<f64>,
    vw: Vec<f64>,
    vb: Vec<f64>,
    inputs: usize,
    outputs: usize,
}

impl Linear {
    fn new(inputs: usize, outputs: usize, gain: f64, rng: &mut Rng64) -> Self {
        let scale = gain * (2.0 / inputs as f64).sqrt();
        Linear {
            w: (0..inputs * outputs)
                .map(|_| rng.next_gaussian() * scale)
                .collect(),
            b: vec![0.0; outputs],
            vw: vec![0.0; inputs * outputs],
            vb: vec![0.0; outputs],
            inputs,
            outputs,
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        (0..self.outputs)
            .map(|o| {
                let row = &self.w[o * self.inputs..(o + 1) * self.inputs];
                self.b[o] + row.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
            })
            .collect()
    }

    fn backward(&self, x: &[f64], dy: &[f64], gw: &mut [f64], gb: &mut [f64]) -> Vec<f64> {
        let mut dx = vec![0.0; self.inputs];
        for o in 0..self.outputs {
            let g = dy[o];
            gb[o] += g;
            let row = o * self.inputs;
            for i in 0..self.inputs {
                gw[row + i] += g * x[i];
                dx[i] += g * self.w[row + i];
            }
        }
        dx
    }

    #[allow(clippy::needless_range_loop)]
    fn apply(&mut self, gw: &[f64], gb: &[f64], lr: f64, mom: f64, scale: f64) {
        for i in 0..self.w.len() {
            self.vw[i] = mom * self.vw[i] - lr * gw[i] * scale;
            self.w[i] += self.vw[i];
        }
        for i in 0..self.b.len() {
            self.vb[i] = mom * self.vb[i] - lr * gb[i] * scale;
            self.b[i] += self.vb[i];
        }
    }
}

struct Grads {
    gw: Vec<f64>,
    gb: Vec<f64>,
}

impl Grads {
    fn zeros_like(l: &Linear) -> Grads {
        Grads {
            gw: vec![0.0; l.w.len()],
            gb: vec![0.0; l.b.len()],
        }
    }
}

/// A fitted residual MLP.
pub struct ResNet {
    config: ResNetConfig,
    input: Linear,
    blocks: Vec<(Linear, Linear)>,
    output: Linear,
    /// Mean training MSE per epoch.
    pub loss_curve: Vec<f64>,
}

impl ResNet {
    /// Train on flat feature vectors.
    pub fn fit(x: &[Vec<f64>], y: &[f64], config: ResNetConfig) -> Self {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty());
        let dim = x[0].len();
        let mut rng = Rng64::new(config.seed);
        let mut net = ResNet {
            input: Linear::new(dim, config.hidden, 1.0, &mut rng),
            blocks: (0..config.depth)
                .map(|_| {
                    (
                        Linear::new(config.hidden, config.hidden, 1.0, &mut rng),
                        // residual branches start small so blocks begin
                        // near-identity — the stability trick of ResNets
                        Linear::new(config.hidden, config.hidden, 0.1, &mut rng),
                    )
                })
                .collect(),
            output: Linear::new(config.hidden, 1, 1.0, &mut rng),
            config,
            loss_curve: Vec::new(),
        };
        let n = x.len();
        let mut order: Vec<usize> = (0..n).collect();
        for _epoch in 0..config.epochs {
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0;
            for batch in order.chunks(config.batch_size.max(1)) {
                let mut g_in = Grads::zeros_like(&net.input);
                let mut g_blocks: Vec<(Grads, Grads)> = net
                    .blocks
                    .iter()
                    .map(|(a, b)| (Grads::zeros_like(a), Grads::zeros_like(b)))
                    .collect();
                let mut g_out = Grads::zeros_like(&net.output);
                for &i in batch {
                    // ---- forward, retaining activations ----
                    let h0: Vec<f64> = net
                        .input
                        .forward(&x[i])
                        .iter()
                        .map(|v| v.max(0.0))
                        .collect();
                    let mut hs = vec![h0];
                    let mut mids = Vec::with_capacity(net.blocks.len());
                    for (w1, w2) in &net.blocks {
                        let prev = hs.last().expect("nonempty");
                        let mid: Vec<f64> = w1.forward(prev).iter().map(|v| v.max(0.0)).collect();
                        let delta = w2.forward(&mid);
                        let next: Vec<f64> = prev.iter().zip(&delta).map(|(p, d)| p + d).collect();
                        mids.push(mid);
                        hs.push(next);
                    }
                    let pred = net.output.forward(hs.last().expect("nonempty"))[0];
                    let err = pred - y[i];
                    epoch_loss += err * err;
                    // ---- backward ----
                    let mut dh = net.output.backward(
                        hs.last().expect("nonempty"),
                        &[2.0 * err],
                        &mut g_out.gw,
                        &mut g_out.gb,
                    );
                    for bi in (0..net.blocks.len()).rev() {
                        let (w1, w2) = &net.blocks[bi];
                        let (g1, g2) = &mut g_blocks[bi];
                        // next = prev + W2 relu(W1 prev); dnext flows to both
                        let dmid = w2.backward(&mids[bi], &dh, &mut g2.gw, &mut g2.gb);
                        let dmid_gated: Vec<f64> = dmid
                            .iter()
                            .zip(&mids[bi])
                            .map(|(g, &m)| if m > 0.0 { *g } else { 0.0 })
                            .collect();
                        let dprev_branch =
                            w1.backward(&hs[bi], &dmid_gated, &mut g1.gw, &mut g1.gb);
                        for (d, b) in dh.iter_mut().zip(&dprev_branch) {
                            *d += b; // skip connection adds gradients
                        }
                    }
                    // input layer (ReLU gate on h0)
                    let dh0: Vec<f64> = dh
                        .iter()
                        .zip(&hs[0])
                        .map(|(g, &h)| if h > 0.0 { *g } else { 0.0 })
                        .collect();
                    net.input.backward(&x[i], &dh0, &mut g_in.gw, &mut g_in.gb);
                }
                // clip + apply
                let mut scale = 1.0 / batch.len() as f64;
                let norm2: f64 = g_in
                    .gw
                    .iter()
                    .chain(&g_in.gb)
                    .chain(g_blocks.iter().flat_map(|(a, b)| {
                        a.gw.iter().chain(&a.gb).chain(b.gw.iter()).chain(&b.gb)
                    }))
                    .chain(&g_out.gw)
                    .chain(&g_out.gb)
                    .map(|g| g * g)
                    .sum();
                let norm = (norm2 * scale * scale).sqrt();
                const CLIP: f64 = 5.0;
                if norm > CLIP {
                    scale *= CLIP / norm;
                }
                let (lr, mom) = (config.learning_rate, config.momentum);
                net.input.apply(&g_in.gw, &g_in.gb, lr, mom, scale);
                for ((w1, w2), (g1, g2)) in net.blocks.iter_mut().zip(&g_blocks) {
                    w1.apply(&g1.gw, &g1.gb, lr, mom, scale);
                    w2.apply(&g2.gw, &g2.gb, lr, mom, scale);
                }
                net.output.apply(&g_out.gw, &g_out.gb, lr, mom, scale);
            }
            net.loss_curve.push(epoch_loss / n as f64);
        }
        net
    }

    /// Predict one feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut h: Vec<f64> = self.input.forward(x).iter().map(|v| v.max(0.0)).collect();
        for (w1, w2) in &self.blocks {
            let mid: Vec<f64> = w1.forward(&h).iter().map(|v| v.max(0.0)).collect();
            let delta = w2.forward(&mid);
            for (hv, d) in h.iter_mut().zip(&delta) {
                *hv += d;
            }
        }
        self.output.forward(&h)[0]
    }

    /// Predict many.
    pub fn predict_all(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Final training MSE.
    pub fn final_loss(&self) -> f64 {
        *self.loss_curve.last().unwrap_or(&f64::NAN)
    }

    /// Number of residual blocks.
    pub fn depth(&self) -> usize {
        self.config.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = Rng64::new(seed);
        (0..n)
            .map(|_| {
                let a = rng.next_f64() * 2.0 - 1.0;
                let b = rng.next_f64() * 2.0 - 1.0;
                (vec![a, b], (3.0 * a).sin() * 0.5 + b * b)
            })
            .unzip()
    }

    #[test]
    fn learns_nonlinear_surface() {
        let (x, y) = wave_data(250, 1);
        let (xt, yt) = wave_data(80, 2);
        let net = ResNet::fit(
            &x,
            &y,
            ResNetConfig {
                epochs: 100,
                ..Default::default()
            },
        );
        let pred = net.predict_all(&xt);
        let mse: f64 = pred
            .iter()
            .zip(&yt)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / yt.len() as f64;
        assert!(mse < 0.08, "test MSE {mse}");
    }

    #[test]
    fn loss_decreases() {
        let (x, y) = wave_data(200, 3);
        let net = ResNet::fit(
            &x,
            &y,
            ResNetConfig {
                epochs: 60,
                ..Default::default()
            },
        );
        assert!(net.final_loss() < net.loss_curve[0] * 0.5);
    }

    #[test]
    fn deeper_nets_still_train_thanks_to_skips() {
        let (x, y) = wave_data(200, 4);
        let net = ResNet::fit(
            &x,
            &y,
            ResNetConfig {
                depth: 6,
                epochs: 60,
                ..Default::default()
            },
        );
        assert_eq!(net.depth(), 6);
        assert!(
            net.final_loss().is_finite() && net.final_loss() < net.loss_curve[0],
            "deep residual net must not diverge: {:?}",
            net.loss_curve.last()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = wave_data(60, 5);
        let cfg = ResNetConfig {
            epochs: 10,
            ..Default::default()
        };
        let a = ResNet::fit(&x, &y, cfg);
        let b = ResNet::fit(&x, &y, cfg);
        assert_eq!(a.predict(&x[0]), b.predict(&x[0]));
    }

    #[test]
    fn seed_variation_changes_model() {
        let (x, y) = wave_data(60, 6);
        let a = ResNet::fit(
            &x,
            &y,
            ResNetConfig {
                seed: 1,
                epochs: 10,
                ..Default::default()
            },
        );
        let b = ResNet::fit(
            &x,
            &y,
            ResNetConfig {
                seed: 2,
                epochs: 10,
                ..Default::default()
            },
        );
        assert_ne!(a.predict(&x[0]), b.predict(&x[0]));
    }
}
