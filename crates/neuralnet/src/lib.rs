//! # stca-neuralnet
//!
//! A small from-scratch neural-network library implementing the CNN
//! baseline of Figures 5 and 6. The paper trained a PyTorch CNN (tuned with
//! TUNE/PipeTune) that maps runtime conditions and counter traces directly
//! to response time, and found it both less accurate than the EA+queueing
//! pipeline (26% vs 11% median error) and far less *stable* than deep
//! forests under retraining (Figure 5). Reproducing those comparisons
//! requires a real gradient-trained network whose accuracy varies with
//! random initialization — exactly what this crate provides:
//!
//! * [`net::ConvNet`] — single-channel 2-D convolution over the counter
//!   trace, ReLU, flatten, concatenation with scalar features, two dense
//!   layers, dropout, MSE loss, SGD-with-momentum training;
//! * [`tune::random_search`] — the random hyperparameter search standing in
//!   for TUNE (epochs, batch size, learning rate, hidden width, drop rate);
//! * [`residual::ResNet`] — the residual-network variant the paper names as
//!   future work, included so the Figure-5 stability study can extend to it.

pub mod net;
pub mod residual;
pub mod tune;

pub use net::{ConvNet, NetConfig};
pub use residual::{ResNet, ResNetConfig};
pub use tune::{random_search, SearchSpace, TrialResult};
