//! The CNN: conv(trace) -> ReLU -> flatten ++ scalars -> dense -> ReLU ->
//! dropout -> dense(1), trained with mini-batch SGD + momentum on MSE.
//!
//! The convolution is the *first* layer, so backpropagation only needs
//! kernel gradients (no input gradients), which keeps the implementation
//! compact without losing any training fidelity.

use stca_util::{Matrix, Rng64};

/// Network hyperparameters (the dimensions the paper's TUNE search covers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Convolution kernel size (square, valid padding, stride 1).
    pub kernel: usize,
    /// Number of convolution filters.
    pub filters: usize,
    /// Hidden dense-layer width ("number of neurons").
    pub hidden: usize,
    /// Dropout probability on the hidden layer.
    pub dropout: f64,
    /// Learning rate.
    pub learning_rate: f64,
    /// SGD momentum.
    pub momentum: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Weight-init / shuffling / dropout seed — vary this to reproduce the
    /// run-to-run variance of Figure 5.
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            kernel: 5,
            filters: 4,
            hidden: 32,
            dropout: 0.1,
            learning_rate: 0.01,
            momentum: 0.9,
            batch_size: 16,
            epochs: 60,
            seed: 1,
        }
    }
}

/// One training example.
#[derive(Debug, Clone)]
pub struct NnSample {
    /// Scalar features.
    pub scalars: Vec<f64>,
    /// Trace matrix (single channel). May be `0 x 0`.
    pub trace: Matrix,
}

struct Dense {
    w: Vec<f64>, // out x in, row-major
    b: Vec<f64>,
    vw: Vec<f64>,
    vb: Vec<f64>,
    inputs: usize,
    outputs: usize,
}

impl Dense {
    fn new(inputs: usize, outputs: usize, rng: &mut Rng64) -> Self {
        let scale = (2.0 / inputs as f64).sqrt();
        Dense {
            w: (0..inputs * outputs)
                .map(|_| rng.next_gaussian() * scale)
                .collect(),
            b: vec![0.0; outputs],
            vw: vec![0.0; inputs * outputs],
            vb: vec![0.0; outputs],
            inputs,
            outputs,
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.outputs {
            let row = &self.w[o * self.inputs..(o + 1) * self.inputs];
            let mut acc = self.b[o];
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            out.push(acc);
        }
    }

    /// Accumulate gradients for one example; returns dL/dx.
    fn backward(&self, x: &[f64], dy: &[f64], gw: &mut [f64], gb: &mut [f64]) -> Vec<f64> {
        let mut dx = vec![0.0; self.inputs];
        for o in 0..self.outputs {
            let g = dy[o];
            gb[o] += g;
            let row = o * self.inputs;
            for i in 0..self.inputs {
                gw[row + i] += g * x[i];
                dx[i] += g * self.w[row + i];
            }
        }
        dx
    }

    #[allow(clippy::needless_range_loop)]
    fn apply(&mut self, gw: &[f64], gb: &[f64], lr: f64, momentum: f64, scale: f64) {
        for i in 0..self.w.len() {
            self.vw[i] = momentum * self.vw[i] - lr * gw[i] * scale;
            self.w[i] += self.vw[i];
        }
        for i in 0..self.b.len() {
            self.vb[i] = momentum * self.vb[i] - lr * gb[i] * scale;
            self.b[i] += self.vb[i];
        }
    }
}

/// The fitted network.
pub struct ConvNet {
    config: NetConfig,
    kernels: Vec<f64>, // filters x k x k
    kernel_bias: Vec<f64>,
    vk: Vec<f64>,
    vkb: Vec<f64>,
    d1: Dense,
    d2: Dense,
    trace_rows: usize,
    trace_cols: usize,
    scalar_dim: usize,
    /// Mean training loss per epoch (diagnostics / Figure-5 training time).
    pub loss_curve: Vec<f64>,
}

impl ConvNet {
    fn conv_out_dims(&self) -> (usize, usize) {
        let k = self
            .config
            .kernel
            .min(self.trace_rows)
            .min(self.trace_cols)
            .max(1);
        (self.trace_rows + 1 - k, self.trace_cols + 1 - k)
    }

    fn effective_kernel(&self) -> usize {
        self.config
            .kernel
            .min(self.trace_rows)
            .min(self.trace_cols)
            .max(1)
    }

    fn conv_forward(&self, trace: &Matrix, out: &mut Vec<f64>) {
        let k = self.effective_kernel();
        let (oh, ow) = self.conv_out_dims();
        out.clear();
        for f in 0..self.config.filters {
            let kern = &self.kernels[f * k * k..(f + 1) * k * k];
            for r in 0..oh {
                for c in 0..ow {
                    let mut acc = self.kernel_bias[f];
                    for kr in 0..k {
                        let row = trace.row(r + kr);
                        for kc in 0..k {
                            acc += kern[kr * k + kc] * row[c + kc];
                        }
                    }
                    out.push(acc.max(0.0)); // fused ReLU
                }
            }
        }
    }

    fn feature_dim(&self) -> usize {
        let (oh, ow) = self.conv_out_dims();
        let conv = if self.trace_rows > 0 && self.trace_cols > 0 {
            self.config.filters * oh * ow
        } else {
            0
        };
        conv + self.scalar_dim
    }

    /// Train a network on `(samples, y)`.
    pub fn fit(samples: &[NnSample], y: &[f64], config: NetConfig) -> Self {
        assert_eq!(samples.len(), y.len());
        assert!(!samples.is_empty());
        let mut rng = Rng64::new(config.seed);
        let trace_rows = samples[0].trace.rows();
        let trace_cols = samples[0].trace.cols();
        let scalar_dim = samples[0].scalars.len();
        let k = config
            .kernel
            .min(trace_rows.max(1))
            .min(trace_cols.max(1))
            .max(1);
        let kscale = (2.0 / (k * k) as f64).sqrt();
        let mut net = ConvNet {
            kernels: (0..config.filters * k * k)
                .map(|_| rng.next_gaussian() * kscale)
                .collect(),
            kernel_bias: vec![0.0; config.filters],
            vk: vec![0.0; config.filters * k * k],
            vkb: vec![0.0; config.filters],
            d1: Dense::new(0, 0, &mut rng), // placeholder, rebuilt below
            d2: Dense::new(0, 0, &mut rng),
            trace_rows,
            trace_cols,
            scalar_dim,
            config,
            loss_curve: Vec::new(),
        };
        let fdim = net.feature_dim();
        net.d1 = Dense::new(fdim, config.hidden, &mut rng);
        net.d2 = Dense::new(config.hidden, 1, &mut rng);

        let n = samples.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut conv_buf = Vec::new();
        let mut h_buf = Vec::new();
        let mut o_buf = Vec::new();
        for _epoch in 0..config.epochs {
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0;
            for batch in order.chunks(config.batch_size.max(1)) {
                let kk = net.effective_kernel();
                let mut gk = vec![0.0; net.kernels.len()];
                let mut gkb = vec![0.0; net.kernel_bias.len()];
                let mut gw1 = vec![0.0; net.d1.w.len()];
                let mut gb1 = vec![0.0; net.d1.b.len()];
                let mut gw2 = vec![0.0; net.d2.w.len()];
                let mut gb2 = vec![0.0; net.d2.b.len()];
                for &i in batch {
                    let s = &samples[i];
                    // ---- forward ----
                    let mut features = Vec::with_capacity(fdim);
                    if trace_rows > 0 && trace_cols > 0 {
                        net.conv_forward(&s.trace, &mut conv_buf);
                        features.extend_from_slice(&conv_buf);
                    }
                    features.extend_from_slice(&s.scalars);
                    net.d1.forward(&features, &mut h_buf);
                    let mut hidden: Vec<f64> = h_buf.iter().map(|&v| v.max(0.0)).collect();
                    // inverted dropout
                    let mut mask = vec![1.0; hidden.len()];
                    if config.dropout > 0.0 {
                        let keep = 1.0 - config.dropout;
                        for (h, m) in hidden.iter_mut().zip(&mut mask) {
                            if rng.next_bool(config.dropout) {
                                *m = 0.0;
                                *h = 0.0;
                            } else {
                                *m = 1.0 / keep;
                                *h *= 1.0 / keep;
                            }
                        }
                    }
                    net.d2.forward(&hidden, &mut o_buf);
                    let pred = o_buf[0];
                    let err = pred - y[i];
                    epoch_loss += err * err;
                    // ---- backward ----
                    let dh = net.d2.backward(&hidden, &[2.0 * err], &mut gw2, &mut gb2);
                    let dpre: Vec<f64> = dh
                        .iter()
                        .zip(&mask)
                        .zip(&h_buf)
                        .map(|((&g, &m), &pre)| if pre > 0.0 { g * m } else { 0.0 })
                        .collect();
                    let dfeat = net.d1.backward(&features, &dpre, &mut gw1, &mut gb1);
                    // conv kernel gradients (conv output came first in features)
                    if trace_rows > 0 && trace_cols > 0 {
                        let (oh, ow) = net.conv_out_dims();
                        for f in 0..config.filters {
                            for r in 0..oh {
                                for c in 0..ow {
                                    let oi = f * oh * ow + r * ow + c;
                                    if conv_buf[oi] <= 0.0 {
                                        continue; // ReLU gate
                                    }
                                    let g = dfeat[oi];
                                    gkb[f] += g;
                                    for kr in 0..kk {
                                        let row = s.trace.row(r + kr);
                                        for kc in 0..kk {
                                            gk[f * kk * kk + kr * kk + kc] += g * row[c + kc];
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                let mut scale = 1.0 / batch.len() as f64;
                // global-norm gradient clipping: keeps badly-tuned trials
                // finite instead of diverging (PyTorch pipelines do the same)
                let norm2: f64 = gk
                    .iter()
                    .chain(&gkb)
                    .chain(&gw1)
                    .chain(&gb1)
                    .chain(&gw2)
                    .chain(&gb2)
                    .map(|g| g * g)
                    .sum();
                let norm = (norm2 * scale * scale).sqrt();
                const CLIP: f64 = 5.0;
                if norm > CLIP {
                    scale *= CLIP / norm;
                }
                let (lr, mom) = (config.learning_rate, config.momentum);
                #[allow(clippy::needless_range_loop)]
                for i in 0..net.kernels.len() {
                    net.vk[i] = mom * net.vk[i] - lr * gk[i] * scale;
                    net.kernels[i] += net.vk[i];
                }
                #[allow(clippy::needless_range_loop)]
                for i in 0..net.kernel_bias.len() {
                    net.vkb[i] = mom * net.vkb[i] - lr * gkb[i] * scale;
                    net.kernel_bias[i] += net.vkb[i];
                }
                net.d1.apply(&gw1, &gb1, lr, mom, scale);
                net.d2.apply(&gw2, &gb2, lr, mom, scale);
            }
            net.loss_curve.push(epoch_loss / n as f64);
        }
        net
    }

    /// Predict one sample (dropout disabled, as at inference).
    pub fn predict(&self, sample: &NnSample) -> f64 {
        let mut features = Vec::with_capacity(self.feature_dim());
        let mut conv_buf = Vec::new();
        if self.trace_rows > 0 && self.trace_cols > 0 {
            self.conv_forward(&sample.trace, &mut conv_buf);
            features.extend_from_slice(&conv_buf);
        }
        features.extend_from_slice(&sample.scalars);
        let mut h = Vec::new();
        self.d1.forward(&features, &mut h);
        let hidden: Vec<f64> = h.iter().map(|&v| v.max(0.0)).collect();
        let mut out = Vec::new();
        self.d2.forward(&hidden, &mut out);
        out[0]
    }

    /// Predict many samples.
    pub fn predict_all(&self, samples: &[NnSample]) -> Vec<f64> {
        samples.iter().map(|s| self.predict(s)).collect()
    }

    /// Final training loss (MSE).
    pub fn final_loss(&self) -> f64 {
        *self.loss_curve.last().unwrap_or(&f64::NAN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize, seed: u64) -> (Vec<NnSample>, Vec<f64>) {
        let mut rng = Rng64::new(seed);
        let mut s = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rng.next_f64();
            let b = rng.next_f64();
            s.push(NnSample {
                scalars: vec![a, b],
                trace: Matrix::zeros(0, 0),
            });
            y.push(0.7 * a - 0.3 * b + 0.1);
        }
        (s, y)
    }

    fn trace_data(n: usize, seed: u64) -> (Vec<NnSample>, Vec<f64>) {
        // label encoded as a bright patch location in an 8x8 trace
        let mut rng = Rng64::new(seed);
        let mut s = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let hot = i % 2 == 0;
            let mut t = Matrix::zeros(8, 8);
            for r in 0..8 {
                for c in 0..8 {
                    t[(r, c)] = rng.next_f64() * 0.1;
                }
            }
            let (r0, c0) = if hot { (0, 0) } else { (5, 5) };
            for r in r0..r0 + 3 {
                for c in c0..c0 + 3 {
                    t[(r, c)] += 1.0;
                }
            }
            s.push(NnSample {
                scalars: vec![],
                trace: t,
            });
            y.push(if hot { 1.0 } else { 0.0 });
        }
        (s, y)
    }

    #[test]
    fn learns_linear_function() {
        let (s, y) = linear_data(200, 1);
        let cfg = NetConfig {
            dropout: 0.0,
            epochs: 120,
            ..Default::default()
        };
        let net = ConvNet::fit(&s, &y, cfg);
        let (st, yt) = linear_data(50, 2);
        let pred = net.predict_all(&st);
        let mse: f64 = pred
            .iter()
            .zip(&yt)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / yt.len() as f64;
        assert!(mse < 0.01, "test MSE {mse}");
    }

    #[test]
    fn loss_decreases_over_training() {
        let (s, y) = linear_data(100, 3);
        let net = ConvNet::fit(
            &s,
            &y,
            NetConfig {
                dropout: 0.0,
                ..Default::default()
            },
        );
        let first = net.loss_curve[0];
        let last = net.final_loss();
        assert!(last < first * 0.5, "loss should fall: {first} -> {last}");
    }

    #[test]
    fn conv_learns_patch_location() {
        let (s, y) = trace_data(120, 4);
        let cfg = NetConfig {
            kernel: 3,
            filters: 4,
            hidden: 16,
            dropout: 0.0,
            epochs: 80,
            learning_rate: 0.02,
            ..Default::default()
        };
        let net = ConvNet::fit(&s, &y, cfg);
        let (st, yt) = trace_data(40, 5);
        let correct = net
            .predict_all(&st)
            .iter()
            .zip(&yt)
            .filter(|(p, t)| (p.round() - **t).abs() < 0.5)
            .count();
        assert!(correct >= 32, "classification-ish accuracy {correct}/40");
    }

    #[test]
    fn different_seeds_give_different_models() {
        // the run-to-run variance of Figure 5
        let (s, y) = linear_data(60, 6);
        let a = ConvNet::fit(
            &s,
            &y,
            NetConfig {
                seed: 1,
                epochs: 5,
                ..Default::default()
            },
        );
        let b = ConvNet::fit(
            &s,
            &y,
            NetConfig {
                seed: 2,
                epochs: 5,
                ..Default::default()
            },
        );
        assert_ne!(a.predict(&s[0]), b.predict(&s[0]));
    }

    #[test]
    fn same_seed_is_deterministic() {
        let (s, y) = linear_data(60, 7);
        let cfg = NetConfig {
            seed: 9,
            epochs: 10,
            ..Default::default()
        };
        let a = ConvNet::fit(&s, &y, cfg);
        let b = ConvNet::fit(&s, &y, cfg);
        assert_eq!(a.predict(&s[0]), b.predict(&s[0]));
    }
}
